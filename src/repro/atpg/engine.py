"""Top-level ATPG flow: random phase + deterministic PODEM top-off.

The production recipe the tutorial describes:

1. collapse the stuck-at universe,
2. burn down easy faults with random patterns (cheap, massively effective
   early — each 64-pattern word is one PPSFP pass),
3. run PODEM on every survivor, fault-simulating each new test against the
   remaining list so one deterministic pattern usually kills several faults
   (dynamic compaction through fault dropping),
4. optionally statically compact the deterministic cubes, X-fill, and
   verify final coverage with one more fault-simulation pass.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..circuit.netlist import Netlist
from ..circuit.values import X
from ..faults.collapse import collapse_faults
from ..faults.model import StuckAtFault
from ..faults.stuck_at import full_fault_list
from ..sim.faultsim import FaultSimulator
from ..sim.parallel import WORD_WIDTH
from .compaction import care_bit_stats, static_compact
from .portfolio import make_engine
from .random_gen import random_patterns


def x_fill(cube: Sequence[int], rng: random.Random, mode: str = "random") -> List[int]:
    """Fill a cube's X positions: ``random``, ``zero``, ``one``, ``repeat``.

    ``repeat`` copies the previous specified bit (reduces shift power in
    scan chains — the fill commercial tools call "adjacent fill").
    """
    filled: List[int] = []
    last = 0
    for value in cube:
        if value != X:
            filled.append(value)
            last = value
        elif mode == "random":
            bit = rng.randint(0, 1)
            filled.append(bit)
            last = bit
        elif mode == "zero":
            filled.append(0)
        elif mode == "one":
            filled.append(1)
        elif mode == "repeat":
            filled.append(last)
        else:
            raise ValueError(f"unknown fill mode {mode!r}")
    return filled


@dataclass
class AtpgResult:
    """Everything the flow produced, plus bookkeeping for the E1 table."""

    patterns: List[List[int]] = field(default_factory=list)
    cubes: List[List[int]] = field(default_factory=list)
    total_faults: int = 0
    detected_random: int = 0
    detected_deterministic: int = 0
    untestable: List[StuckAtFault] = field(default_factory=list)
    aborted: List[StuckAtFault] = field(default_factory=list)
    #: Why PODEM gave up, per aborted fault: "backtracks" or "time".
    #: Aborted faults are unresolved-within-budget, NOT proven untestable,
    #: so they stay in the fault-coverage denominator.
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    consistency_errors: List[StuckAtFault] = field(default_factory=list)
    random_pattern_count: int = 0
    cpu_seconds: float = 0.0
    #: Deterministic engine used for phase 2 ("podem", "dalg", "guided",
    #: or "portfolio").
    engine: str = "podem"
    #: Engine that settled each deterministic fault (detected or proved
    #: untestable), keyed by engine name.  For single engines the only
    #: key is the engine itself; the portfolio attributes per member.
    winner_engines: Dict[str, int] = field(default_factory=dict)
    #: Per-engine abort reasons for faults no engine settled — the audit
    #: trail that makes every abort explained, never silent.
    engine_abort_reasons: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def detected(self) -> int:
        return self.detected_random + self.detected_deterministic

    @property
    def fault_coverage(self) -> float:
        """Detected / all faults."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    @property
    def test_coverage(self) -> float:
        """Detected / (all faults − proven untestable)."""
        testable = self.total_faults - len(self.untestable)
        if testable <= 0:
            return 1.0
        return self.detected / testable

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "patterns": len(self.patterns),
            "faults": self.total_faults,
            "fault_coverage": round(self.fault_coverage, 4),
            "test_coverage": round(self.test_coverage, 4),
            "untestable": len(self.untestable),
            "aborted": len(self.aborted),
            "random_patterns": self.random_pattern_count,
            "cpu_s": round(self.cpu_seconds, 3),
        }
        summary["proved_untestable"] = len(self.untestable)
        summary["engine"] = self.engine
        if self.abort_reasons.get("time"):
            summary["aborted_timeout"] = self.abort_reasons["time"]
        if self.winner_engines:
            summary["winner_engine"] = dict(sorted(self.winner_engines.items()))
        if self.engine_abort_reasons:
            summary["engine_abort_reasons"] = {
                name: dict(sorted(reasons.items()))
                for name, reasons in sorted(self.engine_abort_reasons.items())
            }
        if self.consistency_errors:
            summary["consistency_errors"] = len(self.consistency_errors)
        return summary


def run_atpg(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]] = None,
    random_batches: int = 8,
    min_batch_yield: int = 1,
    backtrack_limit: int = 64,
    fill_mode: str = "random",
    compact: bool = True,
    seed: int = 0,
    backend: object = "ppsfp",
    jobs: Optional[int] = None,
    partitions: Optional[int] = None,
    word_width: int = WORD_WIDTH,
    kernel: str = "python",
    podem_time_budget_s: Optional[float] = None,
    journal: Optional[str] = None,
    engine: str = "podem",
) -> AtpgResult:
    """Run the full stuck-at ATPG flow on ``netlist``.

    ``random_batches`` bounds the random phase (``word_width`` patterns per
    batch — one packed simulation word each); the phase also stops early
    when a batch detects fewer than ``min_batch_yield`` new faults.
    Deterministic cubes are statically compacted when ``compact`` is set,
    then X-filled with ``fill_mode``.

    ``backend``/``jobs``/``partitions`` pick the fault-simulation engine
    for the batch passes (random phase, final verification, coverage
    top-off) — a name from :data:`repro.sim.dispatch.BACKEND_NAMES` or a
    ready backend instance.  ``journal`` names a campaign-journal file:
    the batch passes then run under the supervised backend, each pass
    checkpointing its completed shards so a killed campaign resumes
    without re-grading them (each pattern set forms its own journal
    section).  ``podem_time_budget_s`` caps each PODEM search's wall
    clock, so one pathological fault aborts (counted separately in
    :meth:`AtpgResult.summary` — aborted is not untestable) instead of
    stalling the campaign; it applies to whichever deterministic
    ``engine`` runs phase 2 (the portfolio splits it across members).
    ``engine`` picks the deterministic generator — ``"podem"`` (default),
    ``"dalg"`` (D-algorithm, proves untestability), ``"guided"``
    (SCOAP-guided restarts), or ``"portfolio"`` (all three raced per
    fault; see :mod:`repro.atpg.portfolio`).  ``word_width`` sets the patterns packed per
    simulation word and ``kernel`` the gate-evaluation backend
    (``"python"`` bigints or ``"numpy"`` uint64 lanes — see
    :mod:`repro.sim.npsim`); results are identical for every width and
    kernel.  The per-cube dynamic-dropping sims inside phase 2 always run
    single-process PPSFP: they grade one pattern at a time, where pool
    dispatch is pure overhead.
    """
    start = time.perf_counter()
    netlist.finalize()
    if faults is None:
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist, word_width=word_width, kernel=kernel)
    rng = random.Random(seed)
    result = AtpgResult(total_faults=len(faults), engine=engine)
    remaining = list(faults)
    n_inputs = simulator.view.num_inputs

    owned_journal = None
    if journal is not None and isinstance(backend, str):
        from ..sim.journal import CampaignJournal
        from ..sim.supervisor import SupervisedPoolBackend

        owned_journal = CampaignJournal(journal)
        backend = SupervisedPoolBackend(
            jobs=jobs, seed=seed, partitions=partitions, journal=owned_journal
        )

    def batch_sim(patterns, fault_list, drop=True):
        return simulator.simulate(
            patterns,
            fault_list,
            drop=drop,
            engine=backend,
            jobs=jobs,
            seed=seed,
            partitions=partitions,
        )

    # ------------------------------------------------------------------
    # Phase 1: random patterns with fault dropping.
    # ------------------------------------------------------------------
    kept_patterns: List[List[int]] = []
    with obs.span("random_fill"):
        for batch in range(random_batches):
            if not remaining:
                break
            batch_patterns = random_patterns(
                n_inputs, word_width, seed=seed * 1000 + batch
            )
            sim = batch_sim(batch_patterns, remaining)
            if sim.detected:
                used = sorted(set(sim.detected.values()))
                kept_patterns.extend(batch_patterns[index] for index in used)
                result.detected_random += len(sim.detected)
                remaining = [f for f in remaining if f not in sim.detected]
            result.random_pattern_count += len(batch_patterns)
            if len(sim.detected) < min_batch_yield:
                break

    # ------------------------------------------------------------------
    # Phase 2: deterministic generation with dynamic fault dropping.
    # ------------------------------------------------------------------
    generator = make_engine(
        engine,
        netlist,
        backtrack_limit=backtrack_limit,
        time_budget_s=podem_time_budget_s,
    )
    cubes: List[List[int]] = []
    phase2_fills: List[List[int]] = []
    queue = list(remaining)
    undetected = set(remaining)
    with obs.span("podem"):
        for fault in queue:
            if fault not in undetected:
                continue
            outcome = generator.generate(fault)
            winner = getattr(outcome, "winner", None)
            if outcome.status != "aborted":
                settled_by = winner or engine
                result.winner_engines[settled_by] = (
                    result.winner_engines.get(settled_by, 0) + 1
                )
            if outcome.status == "untestable":
                result.untestable.append(fault)
                undetected.discard(fault)
                continue
            if outcome.status == "aborted":
                result.aborted.append(fault)
                reason = outcome.reason or "backtracks"
                result.abort_reasons[reason] = (
                    result.abort_reasons.get(reason, 0) + 1
                )
                per_engine = getattr(outcome, "engine_reasons", None) or {
                    engine: reason
                }
                for member, member_reason in per_engine.items():
                    member_counts = result.engine_abort_reasons.setdefault(
                        member, {}
                    )
                    member_counts[member_reason] = (
                        member_counts.get(member_reason, 0) + 1
                    )
                undetected.discard(fault)
                continue
            cube = outcome.cube
            assert cube is not None
            cubes.append(cube)
            # Dynamic compaction: the filled test usually detects extra
            # faults.
            filled = x_fill(cube, rng, fill_mode)
            phase2_fills.append(filled)
            sim = simulator.simulate([filled], list(undetected), drop=True)
            result.detected_deterministic += len(sim.detected)
            for detected_fault in sim.detected:
                undetected.discard(detected_fault)
            if fault in undetected:
                # A correct PODEM cube detects its target under *any* X fill
                # (implication already proved a D at an observation point),
                # so fault simulation must confirm it.  Anything else is an
                # engine inconsistency worth surfacing, not silently
                # absorbing.
                undetected.discard(fault)
                result.consistency_errors.append(fault)

    with obs.span("compact"):
        if compact and cubes:
            cubes = static_compact(cubes)
        deterministic_patterns = [x_fill(cube, rng, fill_mode) for cube in cubes]
    result.cubes = cubes
    result.patterns = kept_patterns + deterministic_patterns

    # Compaction re-fills merged cubes, so detections credited to a
    # *particular* random fill during dynamic dropping can be lost.  Verify
    # the final set and top off from the phase-2 fills (each known-good).
    if compact and phase2_fills:
        with obs.span("top_off"):
            counted = [
                f
                for f in faults
                if f not in set(result.untestable)
                and f not in set(result.aborted)
                and f not in set(result.consistency_errors)
            ]
            check = batch_sim(result.patterns, counted)
            missing = [f for f in counted if f not in check.detected]
            # Top off one fill at a time: each fill was already simulated as
            # a single-pattern block during phase 2, so every good-machine
            # block here comes straight from the response cache — no
            # recomputation.
            for fill in phase2_fills:
                if not missing:
                    break
                topoff = simulator.simulate([fill], missing, drop=True)
                if topoff.detected:
                    result.patterns.append(fill)
                    missing = [f for f in missing if f not in topoff.detected]

    if owned_journal is not None:
        owned_journal.close()
    result.cpu_seconds = time.perf_counter() - start
    _publish_atpg(result)
    return result


def _publish_atpg(result: AtpgResult) -> None:
    """Mirror an :class:`AtpgResult` into the active observation."""
    observation = obs.current()
    if observation is None:
        return
    observation.add_counters(
        "atpg",
        {
            "faults": result.total_faults,
            "random_patterns": result.random_pattern_count,
            "detected_random": result.detected_random,
            "detected_deterministic": result.detected_deterministic,
            "untestable": len(result.untestable),
            "aborted": len(result.aborted),
            "consistency_errors": len(result.consistency_errors),
            "patterns": len(result.patterns),
            "cubes": len(result.cubes),
        },
    )
    if result.winner_engines:
        observation.add_counters(
            "atpg.winner",
            {name: count for name, count in sorted(result.winner_engines.items())},
        )
    obs.set_gauge("atpg.fault_coverage", result.fault_coverage)
    obs.set_gauge("atpg.test_coverage", result.test_coverage)


def atpg_table_row(netlist: Netlist, result: AtpgResult) -> Dict[str, object]:
    """One row of the E1 summary table for a finished run."""
    row: Dict[str, object] = {"circuit": netlist.name}
    row.update(netlist.stats())
    row.update(result.summary())
    if result.cubes:
        care, total, density = care_bit_stats(result.cubes)
        row["care_bit_density"] = round(density, 4)
    return row
