"""D-algorithm — five-valued test generation with D-/J-frontier search.

Roth's D-algorithm, adapted to the toolkit's packed dual-rail D-calculus
(:mod:`repro.circuit.dcalc`).  Where PODEM decides only on primary
inputs, the D-algorithm carries explicit *objectives on internal lines*:
a **D-frontier** of gates whose faulted inputs await propagation and a
**J-frontier** — here an explicit goal agenda — of line-justification
objectives not yet grounded in PI assignments.

The search branches over

* which D-frontier gate to propagate through (every frontier gate is an
  alternative at every propagation decision, so multiple-path
  sensitization through reconvergent fanout is explored the way Roth's
  completeness argument requires — with the *unique-sensitization* fast
  path applied when the frontier is a singleton),
* how to justify each internal objective (which controlling input of an
  AND/OR family gate, both parities of an XOR side input, both sides of
  a MUX select), and
* both values of any input line that must merely become *known* (the
  faulty rail of a cone line has to resolve before the fault effect can
  pass a gate that consumes it).

Every alternative at every decision point is exhausted before the engine
concludes, which buys the property PODEM's budgeted PI search rarely
reaches in practice: when the decision tree is exhausted without a test,
the fault is **proved untestable** — ``status="untestable"`` here is a
proof, not a give-up.  Detection, conversely, is claimed only from the
same forward implication PODEM uses (PI assignments plus fault
injection, checked every step), so every returned cube detects its
fault under any X-fill of the remaining don't-cares.

Budgets mirror PODEM: ``backtrack_limit`` bounds conflict-driven
backtracks, ``time_budget_s`` bounds wall clock, and an abort reports
the first-tripped budget in ``reason``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..circuit.dcalc import good_rail, has_x, is_faulted
from ..circuit.gates import (
    GateType,
    controlling_value,
    is_inverting,
    noncontrolling_value,
)
from ..circuit.netlist import Netlist
from ..circuit.values import X
from ..faults.model import OUTPUT_PIN, StuckAtFault
from .podem import _RAIL_X, Podem, PodemResult
from .scoap import Testability

__all__ = ["DAlgorithm"]

# Goal kinds on the agenda (the J-frontier).
_JUSTIFY = 0  # ("justify", line, v): make the good rail of `line` equal v
_GROUND = 1  # ("ground", line): make both rails of `line` known

_AND_FAMILY = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)
_XOR_FAMILY = (GateType.XOR, GateType.XNOR)


class _Decision:
    """One open branch point: alternatives not yet tried, plus enough
    state (goal-agenda snapshot, assignment-trail mark) to rewind to it."""

    __slots__ = ("alternatives", "index", "goals", "mark")

    def __init__(
        self,
        alternatives: List[List[Tuple[int, int, int]]],
        goals: Tuple[Tuple[int, int, int], ...],
        mark: int,
    ):
        self.alternatives = alternatives
        self.index = 0
        self.goals = goals
        self.mark = mark


class DAlgorithm(Podem):
    """D-algorithm engine sharing PODEM's packed implication machinery.

    Only the search differs: :meth:`generate` runs a goal-agenda search
    over internal-line objectives instead of PODEM's PI-only decision
    stack.  All implication, fault injection, cone/frontier/detection
    scans, and the view/cube conventions are inherited, so the two
    engines are conformable by construction — same netlist binding, same
    ``PodemResult`` contract, same cube semantics.
    """

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 64,
        measures: Optional[Testability] = None,
        time_budget_s: Optional[float] = None,
    ):
        super().__init__(netlist, backtrack_limit, measures, time_budget_s)
        self._cone_set: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def generate(self, fault: StuckAtFault) -> PodemResult:
        deadline = (
            None
            if self.time_budget_s is None
            else time.perf_counter() + self.time_budget_s
        )
        return self._search(fault, self.backtrack_limit, deadline)

    def _search(
        self,
        fault: StuckAtFault,
        backtrack_limit: int,
        deadline: Optional[float],
    ) -> PodemResult:
        n_inputs = self.view.num_inputs
        assignment = [X] * n_inputs
        self._cone_gates, self._cone_readers = self._fault_cone(fault)
        self._cone_reader_set = frozenset(self._cone_readers)
        self._cone_set = frozenset(self._cone_gates)
        if not self._cone_readers and not self._branch_reaches_observation(fault):
            return PodemResult(status="untestable", backtracks=0)
        values = self._initial_values(fault)
        needed = 1 - fault.value

        goals: List[Tuple[int, int, int]] = []
        decisions: List[_Decision] = []
        trail: List[int] = []  # PI positions, in assignment order
        backtracks = 0

        while True:
            if self._detected(fault, values):
                # Detection rests purely on forward implication of the PI
                # cube — pending goals belong to a propagation plan that
                # implication has already overtaken, so they are moot.
                return PodemResult(
                    status="detected", cube=list(assignment), backtracks=backtracks
                )
            if deadline is not None and time.perf_counter() > deadline:
                return PodemResult(
                    status="aborted", backtracks=backtracks, reason="time"
                )

            conflict = False
            if goals:
                conflict = self._step_goal(
                    fault, values, assignment, goals, decisions, trail
                )
            else:
                conflict = self._step_frontier(
                    fault, needed, values, goals, decisions, trail
                )

            if not conflict:
                continue
            # Conflict-driven backtrack: rewind to the most recent open
            # decision, undo every PI assigned past it, restore its goal
            # agenda, and take the next alternative.
            backtracks += 1
            if backtracks > backtrack_limit:
                return PodemResult(
                    status="aborted",
                    backtracks=backtracks,
                    reason=self._abort_reason(deadline),
                )
            while decisions:
                decision = decisions[-1]
                decision.index += 1
                if decision.index < len(decision.alternatives):
                    while len(trail) > decision.mark:
                        position = trail.pop()
                        assignment[position] = X
                        self._set_input(position, X, fault, values)
                    goals[:] = decision.goals
                    goals.extend(decision.alternatives[decision.index])
                    break
                decisions.pop()
            else:
                # Every alternative at every branch point is exhausted and
                # no implication ever observed the fault: a proof of
                # untestability, not an abort.
                return PodemResult(status="untestable", backtracks=backtracks)

    # ------------------------------------------------------------------
    # Goal resolution (the J-frontier)
    # ------------------------------------------------------------------

    def _step_goal(
        self,
        fault: StuckAtFault,
        values: List[int],
        assignment: List[int],
        goals: List[Tuple[int, int, int]],
        decisions: List[_Decision],
        trail: List[int],
    ) -> bool:
        """Resolve the top agenda goal.  Returns True on conflict."""
        kind, line, target = goals.pop()
        if kind == _GROUND:
            return self._step_ground(line, values, goals, decisions, trail)

        implied = good_rail(values[line])
        if implied == target:
            return False
        if implied != _RAIL_X:
            return True  # contradicts current implication

        if line in self._input_position:
            position = self._input_position[line]
            assignment[position] = target
            self._set_input(position, target, fault, values)
            trail.append(position)
            return False

        gate = self.netlist.gates[line]
        gate_type = gate.type
        if gate_type in (GateType.BUF, GateType.OUTPUT):
            goals.append((_JUSTIFY, gate.fanin[0], target))
            return False
        if gate_type == GateType.NOT:
            goals.append((_JUSTIFY, gate.fanin[0], 1 - target))
            return False
        if gate_type in (GateType.CONST0, GateType.CONST1):
            return True  # consts are always implied; reaching here is a conflict
        if gate_type in _AND_FAMILY:
            return self._justify_and_family(
                gate, line, target, values, goals, decisions, trail
            )
        if gate_type in _XOR_FAMILY:
            return self._justify_xor_family(
                gate, line, target, values, goals, decisions, trail
            )
        if gate_type == GateType.MUX2:
            return self._justify_mux(
                gate, line, target, values, goals, decisions, trail
            )
        return True  # pragma: no cover - exhaustive over combinational types

    def _justify_and_family(
        self, gate, line, target, values, goals, decisions, trail
    ) -> bool:
        control = controlling_value(gate.type)
        produced_by_noncontrol = (
            control if is_inverting(gate.type) else 1 - control
        )
        open_fanins = [
            f for f in gate.fanin if good_rail(values[f]) == _RAIL_X
        ]
        if target == produced_by_noncontrol:
            # Forced: every input must go non-controlling (any input at the
            # controlling value would have implied the opposite output).
            for fanin in open_fanins:
                goals.append((_JUSTIFY, fanin, 1 - control))
            return False
        # Branch: some input must take the controlling value.  All open
        # inputs are alternatives — completeness needs each one tried.
        if not open_fanins:
            return True  # fully implied inputs but X output ⇒ contradiction
        ordered = sorted(
            open_fanins, key=lambda f: self.measures.controllability(f, control)
        )
        alternatives = [[(_JUSTIFY, f, control)] for f in ordered]
        return self._branch(alternatives, goals, decisions, trail)

    def _justify_xor_family(
        self, gate, line, target, values, goals, decisions, trail
    ) -> bool:
        open_fanins = [
            f for f in gate.fanin if good_rail(values[f]) == _RAIL_X
        ]
        if not open_fanins:
            return True
        # Fix one open input each way and re-pose the parent objective;
        # the open-input count strictly decreases, so this terminates.
        pivot = min(
            open_fanins,
            key=lambda f: min(self.measures.cc0[f], self.measures.cc1[f]),
        )
        first = 0 if self.measures.cc0[pivot] <= self.measures.cc1[pivot] else 1
        alternatives = [
            [(_JUSTIFY, line, target), (_JUSTIFY, pivot, first)],
            [(_JUSTIFY, line, target), (_JUSTIFY, pivot, 1 - first)],
        ]
        return self._branch(alternatives, goals, decisions, trail)

    def _justify_mux(
        self, gate, line, target, values, goals, decisions, trail
    ) -> bool:
        select, when0, when1 = gate.fanin
        select_good = good_rail(values[select])
        if select_good != _RAIL_X:
            goals.append(
                (_JUSTIFY, when1 if select_good else when0, target)
            )
            return False
        alternatives = [
            [(_JUSTIFY, when0, target), (_JUSTIFY, select, 0)],
            [(_JUSTIFY, when1, target), (_JUSTIFY, select, 1)],
        ]
        cheap_side = (
            0
            if self.measures.controllability(when0, target)
            <= self.measures.controllability(when1, target)
            else 1
        )
        if cheap_side == 1:
            alternatives.reverse()
        return self._branch(alternatives, goals, decisions, trail)

    def _step_ground(
        self, line, values, goals, decisions, trail
    ) -> bool:
        """Make both rails of ``line`` known (faulty rails inside the fault
        cone stay X until the lines they reconverge from are assigned)."""
        if not has_x(values[line]):
            return False
        if line in self._input_position:
            if good_rail(values[line]) != _RAIL_X:
                # Good rail assigned but faulty rail X: only possible at
                # the faulted pseudo-PI itself, already fully determined.
                return False
            cheap = 0 if self.measures.cc0[line] <= self.measures.cc1[line] else 1
            alternatives = [
                [(_JUSTIFY, line, cheap)],
                [(_JUSTIFY, line, 1 - cheap)],
            ]
            return self._branch(alternatives, goals, decisions, trail)
        gate = self.netlist.gates[line]
        if gate.type in (GateType.CONST0, GateType.CONST1):
            return False
        candidates = [f for f in gate.fanin if has_x(values[f])]
        if not candidates:
            # All inputs known yet output X: impossible for healthy gates
            # (implication is complete per gate); treat as conflict.
            return True
        # Descend one X fanin, keep the parent posted for re-check.
        goals.append((_GROUND, line, 0))
        goals.append((_GROUND, candidates[0], 0))
        return False

    # ------------------------------------------------------------------
    # Excitation + D-frontier propagation decisions
    # ------------------------------------------------------------------

    def _step_frontier(
        self,
        fault: StuckAtFault,
        needed: int,
        values: List[int],
        goals: List[Tuple[int, int, int]],
        decisions: List[_Decision],
        trail: List[int],
    ) -> bool:
        """Agenda empty: excite the fault, then pick a propagation path."""
        site_value = self._site_good_value(fault, values)
        if site_value == _RAIL_X:
            goals.append((_JUSTIFY, self._excitation_target(fault), needed))
            return False
        if site_value != needed:
            return True  # excitation contradicted
        frontier = self._d_frontier(fault, values)
        if not frontier:
            return True  # fault effect boxed in — no gate can extend it
        if not self._x_path_exists(frontier, values):
            return True
        alternatives: List[List[Tuple[int, int, int]]] = []
        for gate_index in self._rank_frontier(frontier, values):
            alternatives.extend(
                self._propagation_bundles(fault, gate_index, values)
            )
        # A bundle whose goals are all satisfied already cannot advance the
        # search — committing it would recreate this same frontier decision
        # forever.  Bundle construction only emits open goals, so this
        # filter is a loop-proof invariant, not a pruning heuristic.
        alternatives = [
            b for b in alternatives if self._bundle_open(b, values)
        ]
        if not alternatives:
            return True
        if len(alternatives) == 1:
            # Unique sensitization: a single way forward is forced, not a
            # decision — commit without burning a branch point.
            goals.extend(alternatives[0])
            return False
        return self._branch(alternatives, goals, decisions, trail)

    @staticmethod
    def _bundle_open(bundle, values) -> bool:
        """True if applying ``bundle`` can change state: at least one goal
        is unresolved (or contradicted — that surfaces as a conflict)."""
        for kind, line, target in bundle:
            if kind == _GROUND:
                if has_x(values[line]):
                    return True
            elif good_rail(values[line]) != target:
                return True
        return False

    def _propagation_bundles(
        self, fault: StuckAtFault, gate_index: int, values: List[int]
    ) -> List[List[Tuple[int, int, int]]]:
        """Goal bundles that drive the fault effect through one frontier
        gate: side inputs to non-controlling values, X faulty rails in the
        cone grounded so the gate's output can resolve to a D."""
        gate = self.netlist.gates[gate_index]
        gate_type = gate.type
        injected_pin = (
            fault.pin
            if gate_index == fault.gate and fault.pin != OUTPUT_PIN
            else None
        )

        if gate_type == GateType.MUX2:
            return self._mux_bundles(gate, injected_pin, values)

        bundle: List[Tuple[int, int, int]] = []
        noncontrol = noncontrolling_value(gate_type)
        for pin, fanin in enumerate(gate.fanin):
            if pin == injected_pin:
                continue
            value = values[fanin]
            if is_faulted(value):
                continue  # a D on a side input helps, never blocks
            if good_rail(value) == _RAIL_X:
                if noncontrol is not None:
                    # Push ground beneath justify: justify resolves first,
                    # then ground mops up a still-X faulty rail.
                    if fanin in self._cone_set:
                        bundle.append((_GROUND, fanin, 0))
                    bundle.append((_JUSTIFY, fanin, noncontrol))
                else:  # XOR/XNOR: any known side value passes the D
                    bundle.append((_GROUND, fanin, 0))
            elif has_x(value):
                bundle.append((_GROUND, fanin, 0))
        return [bundle] if bundle else []

    def _mux_bundles(
        self, gate, injected_pin: Optional[int], values: List[int]
    ) -> List[List[Tuple[int, int, int]]]:
        """Propagation modes for a 2:1 mux frontier gate.

        A D on a data input passes when the select routes that side; a D
        on the select passes when the two data inputs differ (both
        orderings are alternatives)."""
        select, when0, when1 = gate.fanin
        modes: List[List[Tuple[int, int, int]]] = []

        def faulted_or_injected(pin: int, fanin: int) -> bool:
            if pin == injected_pin:
                return True
            return is_faulted(values[fanin])

        def select_goals(side: int) -> List[Tuple[int, int, int]]:
            bundle: List[Tuple[int, int, int]] = []
            if select in self._cone_set and has_x(values[select]):
                bundle.append((_GROUND, select, 0))
            bundle.append((_JUSTIFY, select, side))
            return bundle

        if faulted_or_injected(1, when0):
            modes.append(select_goals(0))
        if faulted_or_injected(2, when1):
            modes.append(select_goals(1))
        if faulted_or_injected(0, select):
            # Select carries the D: the two output rails then read
            # *different* data inputs (good rail from one side, faulty
            # rail from the other), so the effect shows whenever those
            # cross-rail values differ.  Don't constrain good values
            # here — just resolve both data inputs completely; the
            # ground goals branch over every free value, and implication
            # decides whether the mix produces a D.
            bundle = [
                (_GROUND, fanin, 0)
                for fanin in (when0, when1)
                if has_x(values[fanin])
            ]
            modes.append(bundle)
        return [m for m in modes if m]

    # ------------------------------------------------------------------

    def _branch(
        self,
        alternatives: List[List[Tuple[int, int, int]]],
        goals: List[Tuple[int, int, int]],
        decisions: List[_Decision],
        trail: List[int],
    ) -> bool:
        """Open a decision point and take its first alternative."""
        decisions.append(_Decision(alternatives, tuple(goals), len(trail)))
        goals.extend(alternatives[0])
        return False
