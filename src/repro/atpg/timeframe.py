"""Time-frame expansion ATPG for non-scan sequential logic.

Unrolls a sequential netlist into *k* combinational frames — frame *f*'s
flop values are frame *f-1*'s next-state functions, PIs and POs replicate
per frame — and runs the combinational PODEM on the result.  Frame-0 state
comes from a known reset (``initial_state="zero"``) or is treated as fully
controllable (``"controllable"``, the full-scan-like bound).

Approximation (documented, validated): the target fault is injected in the
**last frame only**, so earlier frames justify state through the *good*
machine.  A real defect is present in every frame; the generated sequence
is therefore validated with the sequential fault simulator (fault active
everywhere, state effects included) and only sequences that *survive
validation* count as detected — the standard conservative single-fault-
at-launch flow for prototype sequential ATPG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..circuit.values import X
from ..faults.collapse import collapse_faults
from ..faults.model import OUTPUT_PIN, StuckAtFault
from ..faults.stuck_at import full_fault_list
from ..sim.seqfaultsim import SequentialFaultSimulator
from .podem import Podem
from .random_gen import random_patterns


@dataclass
class UnrolledModel:
    """The expanded netlist plus coordinate maps back to the original."""

    netlist: Netlist
    n_frames: int
    #: gate index in original -> gate index in frame f: ``frame_map[f][g]``.
    frame_map: List[Dict[int, int]]
    #: PI positions in the unrolled view, per frame, in original PI order.
    pi_positions: List[List[int]]
    #: Positions of frame-0 state inputs in the view (empty for reset mode).
    state_positions: List[int]


def unroll(
    netlist: Netlist, n_frames: int, initial_state: str = "zero"
) -> UnrolledModel:
    """Expand ``netlist`` into ``n_frames`` combinational frames."""
    if n_frames < 1:
        raise ValueError("need at least one frame")
    if initial_state not in ("zero", "controllable"):
        raise ValueError("initial_state must be 'zero' or 'controllable'")
    netlist.finalize()
    expanded = Netlist(f"{netlist.name}_x{n_frames}f")
    frame_map: List[Dict[int, int]] = []

    # Frame-0 state sources.
    state_sources: Dict[int, int] = {}
    for flop in netlist.flops:
        name = f"state0/{netlist.gates[flop].name}"
        if initial_state == "controllable":
            state_sources[flop] = expanded.add(GateType.INPUT, name)
        else:
            state_sources[flop] = expanded.add(GateType.CONST0, name)

    previous_d: Dict[int, int] = {}
    for frame in range(n_frames):
        mapping: Dict[int, int] = {}
        for gate in netlist.gates:
            if gate.type == GateType.INPUT:
                mapping[gate.index] = expanded.add(
                    GateType.INPUT, f"{gate.name}@{frame}"
                )
            elif gate.is_sequential:
                if frame == 0:
                    mapping[gate.index] = state_sources[gate.index]
                else:
                    # This frame's flop output is last frame's D value.
                    mapping[gate.index] = previous_d[gate.index]
        for index in netlist.topo_order:
            gate = netlist.gates[index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                continue
            name = f"{gate.name}@{frame}"
            expanded.add(
                gate.type, name, [mapping[d] for d in gate.fanin]
            )
            mapping[index] = expanded.index_of(name)
        previous_d = {
            flop: mapping[netlist.gates[flop].fanin[0]]
            for flop in netlist.flops
        }
        frame_map.append(mapping)

    expanded.finalize()

    # View coordinates: INPUT gates appear in creation order — state0 first
    # (if controllable), then frame-by-frame PIs.
    view_inputs = expanded.inputs
    position_of = {gate: pos for pos, gate in enumerate(view_inputs)}
    state_positions = [
        position_of[state_sources[flop]]
        for flop in netlist.flops
        if initial_state == "controllable"
    ]
    pi_positions = [
        [position_of[frame_map[f][pi]] for pi in netlist.inputs]
        for f in range(n_frames)
    ]
    return UnrolledModel(
        netlist=expanded,
        n_frames=n_frames,
        frame_map=frame_map,
        pi_positions=pi_positions,
        state_positions=state_positions,
    )


def map_fault_to_frame(
    model: UnrolledModel,
    original: Netlist,
    fault: StuckAtFault,
    frame: int,
) -> Optional[StuckAtFault]:
    """The fault's image inside one frame of the unrolled netlist.

    Flop *output* stems map onto the wire that stands in for the flop in
    that frame (the previous frame's D function or the frame-0 source).
    Branch faults into a flop's D pin have no same-frame observation in
    the unrolled model (their effect is next-frame state) and return None
    — the caller counts them as untestable-in-window.
    """
    mapping = model.frame_map[frame]
    if fault.gate not in mapping:
        return None
    new_gate = mapping[fault.gate]
    if fault.pin == OUTPUT_PIN:
        return StuckAtFault(new_gate, OUTPUT_PIN, fault.value)
    if original.gates[fault.gate].is_sequential:
        return None
    return StuckAtFault(new_gate, fault.pin, fault.value)


@dataclass
class SequentialAtpgResult:
    """Outcome of the time-frame flow."""

    sequences: List[List[List[int]]] = field(default_factory=list)
    total_faults: int = 0
    detected_random: int = 0
    detected_deterministic: int = 0
    unvalidated: int = 0
    untestable_in_window: int = 0
    aborted: int = 0
    cpu_seconds: float = 0.0

    @property
    def detected(self) -> int:
        return self.detected_random + self.detected_deterministic

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    def summary(self) -> dict:
        return {
            "sequences": len(self.sequences),
            "faults": self.total_faults,
            "coverage": round(self.coverage, 4),
            "random": self.detected_random,
            "deterministic": self.detected_deterministic,
            "unvalidated": self.unvalidated,
            "untestable_window": self.untestable_in_window,
            "aborted": self.aborted,
            "cpu_s": round(self.cpu_seconds, 3),
        }


def run_sequential_atpg(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]] = None,
    n_frames: int = 4,
    n_random_sequences: int = 64,
    sequence_length: int = 8,
    backtrack_limit: int = 64,
    seed: int = 0,
) -> SequentialAtpgResult:
    """Random sequences + time-frame PODEM top-off, all from reset.

    Every deterministic sequence is validated with the fault active in all
    cycles; failures count as ``unvalidated`` rather than detected.
    """
    start = time.perf_counter()
    netlist.finalize()
    if not netlist.flops:
        raise ValueError("use run_atpg for purely combinational circuits")
    if faults is None:
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = SequentialFaultSimulator(netlist)
    result = SequentialAtpgResult(total_faults=len(faults))
    n_pi = len(netlist.inputs)

    # Phase 1: random sequences from reset.
    remaining = list(faults)
    for index in range(n_random_sequences):
        if not remaining:
            break
        sequence = random_patterns(n_pi, sequence_length, seed=seed * 977 + index)
        graded = simulator.simulate(sequence, remaining, drop=True)
        if graded.detected:
            result.sequences.append(sequence)
            result.detected_random += len(graded.detected)
            remaining = [f for f in remaining if f not in graded.detected]

    # Phase 2: last-frame PODEM on the unrolled model, validated.
    model = unroll(netlist, n_frames, initial_state="zero")
    podem = Podem(model.netlist, backtrack_limit=backtrack_limit)
    import random as _random

    rng = _random.Random(seed)
    for fault in list(remaining):
        image = map_fault_to_frame(model, netlist, fault, n_frames - 1)
        if image is None:
            result.untestable_in_window += 1
            continue
        outcome = podem.generate(image)
        if outcome.status == "aborted":
            result.aborted += 1
            continue
        if outcome.status == "untestable":
            result.untestable_in_window += 1
            continue
        cube = outcome.cube
        assert cube is not None
        sequence: List[List[int]] = []
        for frame in range(n_frames):
            vector = [
                cube[pos] if cube[pos] != X else rng.randint(0, 1)
                for pos in model.pi_positions[frame]
            ]
            sequence.append(vector)
        graded = simulator.simulate(sequence, [fault], drop=True)
        if fault in graded.detected:
            result.sequences.append(sequence)
            result.detected_deterministic += 1
        else:
            # The single-frame-injection approximation broke: the real
            # (always-active) fault corrupted the justification frames.
            result.unvalidated += 1

    result.cpu_seconds = time.perf_counter() - start
    return result
