"""Sequential (non-scan) fault simulation — parallel-fault style.

Scan converts sequential test into combinational test, but AI chips still
carry non-scan islands (and LBIST runs capture sequences), so a sequential
grader matters.  The engine here is classic **parallel fault simulation**
turned sideways from PPSFP: one machine word carries *word_width − 1 faulty
machines plus the good machine* (lane 0, 63+1 lanes at the default width),
all stepping through the same input sequence cycle by cycle.  Each lane's flop state evolves independently, so
fault effects latched in cycle *t* propagate into cycle *t+1* — the part
combinational engines cannot see.

Detection: a lane differs from lane 0 at any primary output on any cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType, evaluate_parallel
from ..circuit.netlist import Netlist
from ..faults.model import OUTPUT_PIN, StuckAtFault
from .faultsim import FaultSimResult
from .parallel import WORD_WIDTH

#: Faulty machines per word (lane 0 is the fault-free reference).  Derived
#: from the shared word-width constant so this engine and
#: :mod:`repro.sim.parallel` cannot silently diverge.
LANES_PER_WORD = WORD_WIDTH - 1


class SequentialFaultSimulator:
    """Cycle-accurate multi-lane fault simulation over one netlist.

    ``word_width`` sets the machine word size: ``word_width - 1`` faulty
    lanes batch per word alongside the good-machine reference in lane 0.
    Results are identical for any width (lanes are independent).
    """

    def __init__(self, netlist: Netlist, word_width: int = WORD_WIDTH):
        if word_width < 2:
            raise ValueError(
                f"word_width must fit the reference lane plus at least one "
                f"faulty lane, got {word_width}"
            )
        netlist.finalize()
        self.netlist = netlist
        self.word_width = word_width
        self.lanes_per_word = word_width - 1
        self._schedule = [
            (g.index, g.type, tuple(g.fanin))
            for g in (netlist.gates[i] for i in netlist.topo_order)
            if g.type != GateType.INPUT and not g.is_sequential
        ]

    # ------------------------------------------------------------------

    def _prepare_batch(
        self, faults: Sequence[StuckAtFault]
    ) -> Tuple[Dict[int, Tuple[int, int]], Dict[int, List[Tuple[int, int, int]]]]:
        """Injection tables for one batch (≤ 63 faults, lanes 1..n).

        Returns ``(stem_forces, pin_forces)``:
        ``stem_forces[gate] = (lane_mask, value_bits)`` and
        ``pin_forces[gate] = [(pin, lane_mask, value_bits), ...]``.
        """
        stem: Dict[int, Tuple[int, int]] = {}
        pins: Dict[int, List[Tuple[int, int, int]]] = {}
        for lane, fault in enumerate(faults, start=1):
            bit = 1 << lane
            if fault.pin == OUTPUT_PIN:
                mask, value = stem.get(fault.gate, (0, 0))
                mask |= bit
                if fault.value:
                    value |= bit
                stem[fault.gate] = (mask, value)
            else:
                entry = pins.setdefault(fault.gate, [])
                merged = False
                for i, (pin, mask, value) in enumerate(entry):
                    if pin == fault.pin:
                        mask |= bit
                        if fault.value:
                            value |= bit
                        entry[i] = (pin, mask, value)
                        merged = True
                        break
                if not merged:
                    entry.append(
                        (fault.pin, bit, bit if fault.value else 0)
                    )
        return stem, pins

    def _step_batch(
        self,
        pi_bits: Sequence[int],
        state_words: List[int],
        stem: Dict[int, Tuple[int, int]],
        pins: Dict[int, List[Tuple[int, int, int]]],
        mask: int,
    ) -> Tuple[List[int], List[int], List[int]]:
        """One clocked cycle for the whole word of machines.

        Returns ``(po_words, next_state_words, gate_words)``.
        """
        netlist = self.netlist
        gates = netlist.gates
        words: List[int] = [0] * len(gates)
        # PIs: the same bit broadcast to every lane.
        for position, pi in enumerate(netlist.inputs):
            words[pi] = mask if pi_bits[position] else 0
            if pi in stem:
                force_mask, value = stem[pi]
                words[pi] = (words[pi] & ~force_mask) | value
        for position, flop in enumerate(netlist.flops):
            word = state_words[position]
            if flop in stem:
                force_mask, value = stem[flop]
                word = (word & ~force_mask) | value
            words[flop] = word

        for gate_index, gate_type, fanin in self._schedule:
            inputs = [words[driver] for driver in fanin]
            pin_list = pins.get(gate_index)
            if pin_list:
                for pin, force_mask, value in pin_list:
                    inputs[pin] = (inputs[pin] & ~force_mask) | value
            word = evaluate_parallel(gate_type, inputs, mask)
            if gate_index in stem:
                force_mask, value = stem[gate_index]
                word = (word & ~force_mask) | value
            words[gate_index] = word

        po_words = [words[gates[po].fanin[0]] for po in netlist.outputs]
        next_state: List[int] = []
        for flop in netlist.flops:
            gate = gates[flop]
            data = words[gate.fanin[0]]
            # Pin-0 branch faults on the flop corrupt what gets latched.
            pin_list = pins.get(flop)
            if pin_list:
                for pin, force_mask, value in pin_list:
                    if pin == 0:
                        data = (data & ~force_mask) | value
            next_state.append(data)
        return po_words, next_state, words

    # ------------------------------------------------------------------

    def simulate(
        self,
        input_vectors: Sequence[Sequence[int]],
        faults: Sequence[StuckAtFault],
        initial_state: Optional[Sequence[int]] = None,
        drop: bool = True,
    ) -> FaultSimResult:
        """Grade a test sequence against sequential stuck-at faults.

        ``detected[fault]`` records the first *cycle* index at which the
        faulty machine's POs diverge from the good machine's.  All machines
        start from ``initial_state`` (default all-zero reset).
        """
        result = FaultSimResult(total_faults=len(faults))
        remaining = list(faults)
        base_state = list(initial_state or [0] * len(self.netlist.flops))
        if len(base_state) != len(self.netlist.flops):
            raise ValueError("initial state length mismatch")

        while remaining:
            batch = remaining[: self.lanes_per_word]
            remaining = remaining[self.lanes_per_word :]
            stem, pins = self._prepare_batch(batch)
            n_lanes = len(batch) + 1
            mask = (1 << n_lanes) - 1
            state_words = [
                (mask if bit else 0) for bit in base_state
            ]
            alive = (1 << (len(batch) + 1)) - 2  # lanes 1..n still undetected
            for cycle, vector in enumerate(input_vectors):
                po_words, state_words, _ = self._step_batch(
                    vector, state_words, stem, pins, mask
                )
                diff = 0
                for word in po_words:
                    reference = mask if (word & 1) else 0
                    diff |= (word ^ reference)
                diff &= alive
                if diff:
                    for lane, fault in enumerate(batch, start=1):
                        bit = 1 << lane
                        if diff & bit:
                            if fault not in result.detected:
                                result.detected[fault] = cycle
                            if drop:
                                alive &= ~bit
                    if drop and not alive:
                        break
            result.patterns_simulated = len(input_vectors)
        result.undetected = [
            fault for fault in faults if fault not in result.detected
        ]
        return result
