"""Lease-based shared shard store: multi-runner campaigns on one directory.

The supervised backend (PR 3) made one *process pool* crash-tolerant; a
production test floor runs one campaign across many *hosts* and keeps
going when a host dies mid-shard.  :class:`ShardStore` is the shared
substrate that makes that possible with nothing but a directory (NFS
mount, bind mount, tmpfs — anything with atomic ``rename``/``link``):

* the campaign's identity is the same :class:`~repro.sim.journal.CampaignKey`
  the journal uses (structural signature + pattern/fault digests + seed +
  partition count + drop flag), pinned once in ``campaign.json`` and
  verified by every runner that attaches — a runner submitting a
  different circuit or pattern set is rejected up front, never silently
  mis-merged;
* each shard moves through ``available -> leased(runner, deadline) ->
  done``.  Claims are atomic (``link(2)`` from a private temp file, which
  fails with ``EEXIST`` if any other runner holds the lease); renewals
  atomically replace the lease file; expired leases are **stolen** by
  renaming the stale file aside — of N racing stealers exactly one
  rename succeeds;
* results are **append-only and idempotent**: a shard result is written
  to a temp file, fsynced, then ``link``ed to its final name, so the
  first writer wins and every later writer (a stalled runner racing its
  own stolen shard) verifies its bytes carry the same digest and
  converges.  Fault simulation is deterministic, so a double-graded
  shard *must* digest-match; a mismatch means corruption and raises.

The worst interleaving — a steal racing a slow writer whose renewal
clobbers the stealer's lease — can transiently double-*lease* a shard,
but never double-*grade* it into a merge: the merge reads each shard's
single result file, and first-write-wins decided which bytes those are.

Directory layout::

    store/
      campaign.json          # CampaignKey + shard count (atomic create)
      shards/NNNNN.lease     # live lease  (link-claimed, rename-renewed)
      shards/NNNNN.result    # done marker (link-published, digest-carrying)
      events/<runner>.jsonl  # per-runner telemetry (obs EventLog side files)

``repro obs tail STORE_DIR`` renders the live per-runner ownership map
from exactly these files (:func:`read_store_progress`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set

from ..obs.events import (
    LEASE_CLAIM,
    LEASE_LOST,
    LEASE_RENEW,
    LEASE_STEAL,
    PUBLISH,
    PUBLISH_CONFLICT,
    EventLog,
)
from .faultsim import FaultSimResult
from .journal import CampaignKey, deserialize_partial, serialize_partial

STORE_VERSION = 1

#: Renew a held lease once less than this fraction of ``lease_s`` remains.
RENEW_FRACTION = 0.5


class StoreMismatchError(ValueError):
    """The store directory belongs to a different campaign."""


class StoreCorruptionError(RuntimeError):
    """Two writers produced different bytes for one shard — determinism
    is broken (or the store was tampered with); never merge past this."""


def validate_store_args(
    runner_id: str = "runner", lease_s: float = 30.0
) -> None:
    """Reject nonsensical store arguments with actionable messages.

    ``runner_id`` names lease ownership and event files, so it must be a
    short filesystem-safe token; ``lease_s`` is the heartbeat deadline —
    nonpositive values would make every lease stealable at birth.
    """
    if not isinstance(runner_id, str) or not runner_id:
        raise ValueError(f"runner_id must be a non-empty string, got {runner_id!r}")
    if len(runner_id) > 64:
        raise ValueError(
            f"runner_id must be at most 64 characters, got {len(runner_id)}"
        )
    safe = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
    if not set(runner_id) <= safe:
        raise ValueError(
            f"runner_id {runner_id!r} may only contain letters, digits, "
            f"'.', '_' and '-' (it names files in the store)"
        )
    if not isinstance(lease_s, (int, float)) or not lease_s > 0:
        raise ValueError(f"lease_s must be a positive number, got {lease_s!r}")


def result_digest(serialized: Dict[str, object]) -> str:
    """Digest of one serialized shard result's *deterministic* content.

    Stats (wall times, metrics) legitimately differ between two runners
    grading the same shard; the detection map, undetected list, and
    counts must not.  The digest covers only the latter, so idempotent
    publishes digest-match and true divergence is caught.
    """
    content = {
        k: serialized[k]
        for k in ("index", "total", "patterns_simulated", "detected", "undetected")
    }
    blob = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class Lease:
    """One runner's time-bounded claim on one shard."""

    shard: int
    runner: str
    deadline: float  # wall-clock expiry (store clock)
    claimed_at: float
    stolen_from: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "shard": self.shard,
            "runner": self.runner,
            "deadline": self.deadline,
            "claimed_at": self.claimed_at,
        }
        if self.stolen_from:
            payload["stolen_from"] = self.stolen_from
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Lease":
        return cls(
            shard=int(payload["shard"]),
            runner=str(payload["runner"]),
            deadline=float(payload["deadline"]),
            claimed_at=float(payload.get("claimed_at", 0.0)),
            stolen_from=payload.get("stolen_from"),
        )


class ShardStore:
    """One runner's handle on a shared campaign directory.

    Every mutation uses only atomic filesystem primitives (``link``,
    ``rename``, ``O_EXCL``-equivalent temp-file dances), so N runner
    processes on N hosts can share one store with no coordinator and no
    locks.  ``clock`` is injectable for the lease-lifecycle property
    tests; production uses wall time, which is what lease deadlines must
    survive host reboots on.
    """

    def __init__(
        self,
        root: str,
        runner_id: str = "runner",
        lease_s: float = 30.0,
        clock: Callable[[], float] = time.time,
        events: Optional[EventLog] = None,
    ):
        validate_store_args(runner_id=runner_id, lease_s=lease_s)
        self.root = str(root)
        self.runner_id = runner_id
        self.lease_s = float(lease_s)
        self.clock = clock
        self.events = events if events is not None else EventLog()
        self.steals = 0
        self.publish_conflicts = 0
        self._n_shards: Optional[int] = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def _campaign_path(self) -> str:
        return os.path.join(self.root, "campaign.json")

    @property
    def _shards_dir(self) -> str:
        return os.path.join(self.root, "shards")

    @property
    def _events_dir(self) -> str:
        return os.path.join(self.root, "events")

    def _lease_path(self, shard: int) -> str:
        return os.path.join(self._shards_dir, f"{shard:05d}.lease")

    def _result_path(self, shard: int) -> str:
        return os.path.join(self._shards_dir, f"{shard:05d}.result")

    def _tmp_path(self, tag: str) -> str:
        return os.path.join(
            self._shards_dir, f".tmp-{tag}-{self.runner_id}-{os.getpid()}"
        )

    # ------------------------------------------------------------------
    # Campaign identity
    # ------------------------------------------------------------------

    def initialize(self, key: CampaignKey, n_shards: int) -> bool:
        """Create the store for ``key`` or attach to an existing one.

        The first runner to arrive pins the campaign identity; every
        later runner verifies its own key against the pinned one and gets
        a field-by-field :class:`StoreMismatchError` on any difference —
        a wrong circuit, pattern file, seed, or partition count must die
        loudly here, never silently mis-merge shards from two campaigns.
        Returns True when this call created the store.
        """
        if not isinstance(n_shards, int) or n_shards < 0:
            raise ValueError(f"n_shards must be a non-negative int, got {n_shards!r}")
        os.makedirs(self._shards_dir, exist_ok=True)
        os.makedirs(self._events_dir, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "key": {
                field: getattr(key, field) for field in key.__dataclass_fields__
            },
            "n_shards": n_shards,
        }
        tmp = self._tmp_path("campaign")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        created = True
        try:
            os.link(tmp, self._campaign_path)
        except FileExistsError:
            created = False
        finally:
            os.unlink(tmp)
        if not created:
            self._verify(key, n_shards)
        self._n_shards = n_shards
        return created

    def _verify(self, key: CampaignKey, n_shards: int) -> None:
        with open(self._campaign_path) as handle:
            existing = json.load(handle)
        pinned = existing.get("key", {})
        mine = {field: getattr(key, field) for field in key.__dataclass_fields__}
        mismatched = sorted(
            field for field in mine if pinned.get(field) != mine[field]
        )
        if existing.get("n_shards") != n_shards:
            mismatched.append("n_shards")
        if mismatched:
            raise StoreMismatchError(
                f"store {self.root!r} belongs to a different campaign: "
                f"{', '.join(mismatched)} differ(s) — the circuit, pattern "
                f"file, fault universe, seed, partition count, and drop flag "
                f"must all match the run that created the store"
            )

    def attach(self) -> Dict[str, object]:
        """Read the pinned campaign record (for tail/tooling)."""
        with open(self._campaign_path) as handle:
            payload = json.load(handle)
        self._n_shards = int(payload["n_shards"])
        return payload

    @property
    def n_shards(self) -> int:
        if self._n_shards is None:
            self.attach()
        return self._n_shards

    # ------------------------------------------------------------------
    # Lease lifecycle
    # ------------------------------------------------------------------

    def _read_lease(self, shard: int) -> Optional[Lease]:
        try:
            with open(self._lease_path(shard)) as handle:
                return Lease.from_dict(json.load(handle))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, ValueError):
            # A torn lease (host died mid-write before the atomic link —
            # impossible for claims, possible only via tampering): treat
            # as expired so someone reclaims the shard.
            return Lease(shard=shard, runner="?", deadline=0.0, claimed_at=0.0)

    def _write_lease_file(self, lease: Lease, tag: str) -> str:
        tmp = self._tmp_path(f"{tag}-{lease.shard}")
        with open(tmp, "w") as handle:
            json.dump(lease.to_dict(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        return tmp

    def try_claim(self, shard: int) -> Optional[Lease]:
        """Attempt to move ``shard`` from available/expired to leased.

        Returns the new lease, or None when the shard is done, held by a
        live peer, or lost to a racing claimer.  Stealing an expired
        lease first renames it aside — exactly one of N racing stealers
        wins the rename; the losers see ``FileNotFoundError`` and back
        off.  The eviction *is* the steal (counted and emitted as one)
        even if the follow-up claim is then lost to a racing peer: the
        dead runner's lease is gone either way, and the telemetry must
        show who removed it.
        """
        if self.is_done(shard):
            return None
        holder = self._read_lease(shard)
        stolen_from: Optional[str] = None
        if holder is not None:
            if holder.deadline > self.clock():
                return None  # live peer
            stale = self._tmp_path(f"stale-{shard}")
            try:
                os.rename(self._lease_path(shard), stale)
            except FileNotFoundError:
                return None  # another stealer won, or holder released
            os.unlink(stale)
            stolen_from = holder.runner
            self.steals += 1
            self.events.emit(
                LEASE_STEAL, "lease_steal", partition=shard,
                runner=self.runner_id, stolen_from=stolen_from,
            )
        now = self.clock()
        lease = Lease(
            shard=shard,
            runner=self.runner_id,
            deadline=now + self.lease_s,
            claimed_at=now,
            stolen_from=stolen_from,
        )
        tmp = self._write_lease_file(lease, "claim")
        try:
            os.link(tmp, self._lease_path(shard))
        except FileExistsError:
            return None  # lost the claim race to a peer
        finally:
            os.unlink(tmp)
        self.events.emit(
            LEASE_CLAIM, "lease_claim", partition=shard, runner=self.runner_id
        )
        return lease

    def renew(self, lease: Lease) -> Optional[Lease]:
        """Extend a held lease's deadline; None if it was stolen.

        The read-then-rename is not atomic: a steal landing in between
        means this renewal clobbers the stealer's lease and both runners
        grade the shard.  That is the documented worst case — the double
        grade converges at :meth:`publish` via first-write-wins, and the
        shard is still counted exactly once in any merge.
        """
        current = self._read_lease(lease.shard)
        if current is None or current.runner != self.runner_id:
            self.events.emit(
                LEASE_LOST, "lease_lost", partition=lease.shard,
                runner=self.runner_id,
                new_holder=current.runner if current else None,
            )
            return None
        renewed = replace(lease, deadline=self.clock() + self.lease_s)
        tmp = self._write_lease_file(renewed, "renew")
        os.replace(tmp, self._lease_path(lease.shard))
        self.events.emit(
            LEASE_RENEW, "lease_renew", partition=lease.shard,
            runner=self.runner_id,
        )
        return renewed

    def needs_renewal(self, lease: Lease) -> bool:
        return lease.deadline - self.clock() < self.lease_s * RENEW_FRACTION

    def release(self, lease: Lease) -> None:
        """Drop a held lease (after publish, or when giving up a shard)."""
        current = self._read_lease(lease.shard)
        if current is not None and current.runner == self.runner_id:
            try:
                os.unlink(self._lease_path(lease.shard))
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Results: append-only, first-write-wins, digest-verified
    # ------------------------------------------------------------------

    def publish(self, shard: int, partial: FaultSimResult) -> bool:
        """Durably record ``shard``'s result; True if this write won.

        The serialized result is fsynced in a private temp file and then
        ``link``ed to its final name — atomic, so no reader ever sees a
        half-written result.  A loser (idempotent duplicate from a steal
        race or a journal replay) verifies the winner's digest matches
        its own and converges silently; a digest mismatch is corruption
        and raises :class:`StoreCorruptionError`.
        """
        serialized = serialize_partial(shard, partial)
        digest = result_digest(serialized)
        payload = {
            "version": STORE_VERSION,
            "runner": self.runner_id,
            "digest": digest,
            "t_wall": self.clock(),
            "partial": serialized,
        }
        tmp = self._tmp_path(f"result-{shard}")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        won = True
        try:
            os.link(tmp, self._result_path(shard))
        except FileExistsError:
            won = False
        finally:
            os.unlink(tmp)
        # The shard is done; drop our own lease on it (a peer's lease —
        # e.g. a stealer we raced — is theirs to drop when *they* publish).
        current = self._read_lease(shard)
        if current is not None and current.runner == self.runner_id:
            try:
                os.unlink(self._lease_path(shard))
            except FileNotFoundError:
                pass
        if won:
            self.events.emit(
                PUBLISH, "publish", partition=shard,
                runner=self.runner_id, digest=digest,
            )
            return True
        existing = self._read_result(shard)
        if existing["digest"] != digest:
            raise StoreCorruptionError(
                f"shard {shard}: runner {self.runner_id!r} graded digest "
                f"{digest} but {existing['runner']!r} published "
                f"{existing['digest']} — deterministic simulation cannot "
                f"diverge; refusing to merge"
            )
        self.publish_conflicts += 1
        self.events.emit(
            PUBLISH_CONFLICT, "publish_conflict", partition=shard,
            runner=self.runner_id, winner=existing["runner"],
        )
        return False

    def _read_result(self, shard: int) -> Dict[str, object]:
        with open(self._result_path(shard)) as handle:
            return json.load(handle)

    def is_done(self, shard: int) -> bool:
        return os.path.exists(self._result_path(shard))

    def done_indices(self) -> Set[int]:
        try:
            entries = os.listdir(self._shards_dir)
        except FileNotFoundError:
            return set()
        return {
            int(name.split(".")[0])
            for name in entries
            if name.endswith(".result")
        }

    def leases(self) -> Dict[int, Lease]:
        """All live lease files (expired ones included — callers decide)."""
        try:
            entries = os.listdir(self._shards_dir)
        except FileNotFoundError:
            return {}
        held: Dict[int, Lease] = {}
        for name in entries:
            if not name.endswith(".lease"):
                continue
            lease = self._read_lease(int(name.split(".")[0]))
            if lease is not None:
                held[lease.shard] = lease
        return held

    def is_complete(self) -> bool:
        return len(self.done_indices()) >= self.n_shards

    def load_results(self) -> Dict[int, FaultSimResult]:
        """Deserialize every published shard result, digest-verified.

        Every runner merges from these same bytes — including shards it
        graded itself — so all runners' merged results are bit-identical
        by construction.
        """
        results: Dict[int, FaultSimResult] = {}
        for shard in sorted(self.done_indices()):
            payload = self._read_result(shard)
            serialized = payload["partial"]
            if result_digest(serialized) != payload["digest"]:
                raise StoreCorruptionError(
                    f"shard {shard}: stored digest {payload['digest']} does "
                    f"not match its content — result file corrupted"
                )
            partial = deserialize_partial(serialized)
            partial.stats["published_by"] = payload.get("runner")
            results[shard] = partial
        return results

    # ------------------------------------------------------------------
    # Completion hygiene
    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Remove lease files for shards that are already done.

        Called by whichever runner observes completion (all of them, in
        practice — sweeping is idempotent), so a finished campaign leaves
        zero leases behind even when a killed runner never released its
        own.  Returns the number of leases removed.
        """
        removed = 0
        for shard, _ in sorted(self.leases().items()):
            if self.is_done(shard):
                try:
                    os.unlink(self._lease_path(shard))
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    def write_events(self) -> Optional[str]:
        """Persist this runner's event log into the store (postmortem aid)."""
        if not len(self.events):
            return None
        path = os.path.join(self._events_dir, f"{self.runner_id}.jsonl")
        return self.events.write_jsonl(path)


# ----------------------------------------------------------------------
# Progress view (repro obs tail STORE_DIR)
# ----------------------------------------------------------------------


def read_store_progress(root: str) -> Dict[str, object]:
    """Live per-runner ownership map of a store directory.

    Built for ``repro obs tail``: who holds which shard (and how long
    until the lease is stealable), who has published what, and how many
    steals the campaign has seen — all from the store's own files, no
    runner cooperation needed.
    """
    store = ShardStore(root, runner_id="tail.reader")
    campaign = store.attach()
    now = store.clock()
    done = store.done_indices()
    leases = {
        shard: lease for shard, lease in store.leases().items() if shard not in done
    }
    runners: Dict[str, Dict[str, object]] = {}

    def runner_row(name: str) -> Dict[str, object]:
        return runners.setdefault(
            name, {"published": 0, "faults_graded": 0, "held": [], "steals": 0}
        )

    faults_graded = 0
    detected = 0
    for shard in sorted(done):
        payload = store._read_result(shard)
        row = runner_row(str(payload.get("runner", "?")))
        row["published"] += 1
        partial = payload.get("partial", {})
        row["faults_graded"] += int(partial.get("total", 0))
        faults_graded += int(partial.get("total", 0))
        detected += len(partial.get("detected", ()))
    for shard, lease in sorted(leases.items()):
        runner_row(lease.runner)["held"].append(
            {"shard": shard, "expires_in_s": round(lease.deadline - now, 3)}
        )
    steals = 0
    events_dir = os.path.join(root, "events")
    if os.path.isdir(events_dir):
        from ..obs.events import read_jsonl

        for name in sorted(os.listdir(events_dir)):
            if not name.endswith(".jsonl"):
                continue
            for payload in read_jsonl(os.path.join(events_dir, name)):
                for event in payload.get("events", ()):
                    if event.get("kind") == LEASE_STEAL:
                        steals += 1
                        thief = (event.get("args") or {}).get("runner")
                        if thief:
                            runner_row(str(thief))["steals"] += 1
    n_shards = int(campaign.get("n_shards", 0))
    return {
        "path": str(root),
        "key": campaign.get("key"),
        "n_shards": n_shards,
        "partitions_done": sorted(done),
        "partitions_done_count": len(done),
        "partitions_total": n_shards,
        "leased": len(leases),
        "available": max(0, n_shards - len(done) - len(leases)),
        "faults_graded": faults_graded,
        "detected": detected,
        "runners": runners,
        "steals": steals,
        "complete": len(done) >= n_shards,
    }
