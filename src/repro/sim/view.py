"""Full-scan combinational view of a netlist.

Scan-based test treats each flop as a controllable/observable point: during
shift the chain loads arbitrary state, the capture clock latches the
combinational response, and unload observes it.  ATPG and fault simulation
therefore work on the *combinational view*:

* **test inputs** — primary inputs followed by flop outputs (pseudo-PIs),
* **test outputs** — primary outputs followed by flop D pins (pseudo-POs).

:class:`CombinationalView` fixes that ordering once so patterns and
responses are plain value vectors shared by every engine in the toolkit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit.netlist import Netlist


class CombinationalView:
    """Index maps between test vectors and netlist gates (full-scan view)."""

    def __init__(self, netlist: Netlist):
        netlist.finalize()
        self.netlist = netlist
        #: Gate indices whose values a test pattern assigns, in vector order.
        self.input_gates: List[int] = list(netlist.inputs) + list(netlist.flops)
        #: Gates whose value a response reports: the driver feeding each PO,
        #: then the functional D driver of each flop.
        self.output_readers: List[int] = [
            netlist.gates[po].fanin[0] for po in netlist.outputs
        ] + [netlist.gates[ff].fanin[0] for ff in netlist.flops]

    @property
    def num_inputs(self) -> int:
        return len(self.input_gates)

    @property
    def num_outputs(self) -> int:
        return len(self.output_readers)

    def input_names(self) -> List[str]:
        gates = self.netlist.gates
        return [gates[i].name for i in self.input_gates]

    def output_names(self) -> List[str]:
        names = [self.netlist.gates[po].name for po in self.netlist.outputs]
        names += [
            f"{self.netlist.gates[ff].name}.D" for ff in self.netlist.flops
        ]
        return names

    def split_pattern(self, pattern: Sequence[int]) -> Tuple[Sequence[int], Sequence[int]]:
        """Split a test vector into ``(primary_inputs, flop_state)`` parts."""
        n_pi = len(self.netlist.inputs)
        return pattern[:n_pi], pattern[n_pi:]

    def read_outputs(self, values: Sequence[int]) -> List[int]:
        """Extract the response vector from a full gate-value assignment."""
        return [values[reader] for reader in self.output_readers]
