"""Pluggable fault-simulation backends, including a multiprocess pool.

The dispatch layer decouples *what* is simulated (the PPSFP kernel in
:mod:`repro.sim.faultsim`) from *how the fault universe is scheduled*:

* :class:`SerialBackend` — the textbook one-fault/one-pattern engine.
* :class:`PpsfpBackend` — single-process bit-parallel PPSFP.
* :class:`PoolBackend` — the collapsed fault list is partitioned
  deterministically (seeded shuffle + round-robin, partition count
  independent of worker count), the good-machine response is computed
  once in the parent, and each :mod:`multiprocessing` worker runs
  cone-limited PPSFP over its partition against that shared response.
  Partial results are min-merged, so first-detecting-pattern semantics
  survive sharding and the outcome is bit-identical to PPSFP for any
  number of workers.

Accelerator-scale fault universes (Sadi & Guin's yield-loss setting, the
tutorial's E3/E4 experiments) are only tractable when the universe is
sharded this way: faults are embarrassingly parallel once the good
machine is shared, and fault dropping still works because each fault's
lifetime is confined to one partition.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import StuckAtFault
from ..obs import MetricRegistry
from ..obs.events import PARTITION_BEGIN, PARTITION_END, EventLog
from . import shm
from .faultsim import FaultSimResult, FaultSimulator, _unique

#: Backend names accepted by ``FaultSimulator.simulate(engine=...)`` and the
#: ``--backend`` CLI flag.  ``supervised`` is the fault-tolerant pool
#: (see :mod:`repro.sim.supervisor`).
BACKEND_NAMES = ("serial", "ppsfp", "pool", "supervised")


def validate_pool_args(
    jobs: Optional[int] = None,
    seed: int = 0,
    partitions: Optional[int] = None,
) -> None:
    """Reject nonsensical pool arguments with actionable messages.

    ``jobs`` and ``partitions`` must be positive when given (``None``
    means "pick automatically"); ``seed`` must be a non-negative int so
    the partitioning shuffle is reproducible across documentation and
    journals.
    """
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    if partitions is not None and (not isinstance(partitions, int) or partitions < 1):
        raise ValueError(f"partitions must be a positive integer, got {partitions!r}")
    if not isinstance(seed, int) or seed < 0:
        raise ValueError(f"seed must be a non-negative integer, got {seed!r}")

#: Target faults per pool partition.  The partition count derives from the
#: universe size alone (never from the worker count), so the shard
#: boundaries — and therefore the merged result — are reproducible on any
#: machine.
DEFAULT_PARTITION_FAULTS = 256

#: Lower bound on partitions for non-trivial universes, so small fault
#: lists still feed several workers.
MIN_PARTITIONS = 8


def default_partition_count(n_faults: int) -> int:
    """Deterministic partition count for ``n_faults`` collapsed faults."""
    if n_faults == 0:
        return 0
    by_size = math.ceil(n_faults / DEFAULT_PARTITION_FAULTS)
    return min(n_faults, max(MIN_PARTITIONS, by_size))


def partition_faults(
    faults: Sequence[StuckAtFault], n_partitions: int, seed: int = 0
) -> List[List[StuckAtFault]]:
    """Shard ``faults`` into ``n_partitions`` deterministic partitions.

    A seeded shuffle spreads structurally adjacent faults (which share
    fanout cones and detection profiles) across partitions, then
    round-robin assignment balances sizes to within one fault.  Given the
    same seed and partition count the shards are identical on every run
    and every worker count.
    """
    unique = _unique(faults)
    if not unique:
        return []
    n = max(1, min(n_partitions, len(unique)))
    order = list(range(len(unique)))
    random.Random(seed).shuffle(order)
    partitions: List[List[StuckAtFault]] = [[] for _ in range(n)]
    for position, index in enumerate(order):
        partitions[position % n].append(unique[index])
    return partitions


def partition_metrics(partial: FaultSimResult) -> Dict[str, object]:
    """Serialized worker-side metric registry for one partition result.

    Built inside the worker (or rebuilt in the parent for journal-replayed
    partials that predate metrics) so per-partition counters travel home
    inside ``stats["metrics"]`` and fold together with the registry's
    associative, commutative merge — the totals are independent of worker
    count, completion order, and partition grouping.
    """
    stats = partial.stats
    registry = MetricRegistry()
    registry.counter("faultsim.faults_simulated").add(partial.total_faults)
    registry.counter("faultsim.faults_detected").add(len(partial.detected))
    registry.counter("faultsim.events_propagated").add(
        stats.get("events_propagated", 0)
    )
    registry.counter("faultsim.words_evaluated").add(
        stats.get("words_evaluated", 0)
    )
    registry.histogram("faultsim.partition_wall_s").observe(
        stats.get("wall_time_s", 0.0)
    )
    return registry.to_dict()


def merge_results(
    partials: Sequence[FaultSimResult],
    universe: Sequence[StuckAtFault],
    n_patterns: int,
    drop: bool,
) -> FaultSimResult:
    """Min-merge per-partition results back into one :class:`FaultSimResult`.

    ``detected`` keeps the smallest first-detecting-pattern index seen for
    each fault (partitions are disjoint, but min-merge also makes the
    merge idempotent); ``undetected`` is rebuilt in the caller's original
    fault order, matching exactly what the single-process engines produce.
    """
    result = FaultSimResult(total_faults=len(universe))
    for partial in partials:
        for fault, pattern_index in partial.detected.items():
            previous = result.detected.get(fault)
            if previous is None or pattern_index < previous:
                result.detected[fault] = pattern_index
        result.patterns_simulated = max(
            result.patterns_simulated, partial.patterns_simulated
        )
    result.undetected = [f for f in universe if f not in result.detected]
    if not drop:
        result.patterns_simulated = n_patterns
    return result


class FaultSimBackend:
    """A strategy for running stuck-at fault simulation over one netlist."""

    name = "?"

    def run(
        self,
        simulator: FaultSimulator,
        patterns: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
        drop: bool = True,
    ) -> FaultSimResult:
        raise NotImplementedError

    def simulate_netlist(
        self,
        netlist: Netlist,
        patterns: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
        drop: bool = True,
    ) -> FaultSimResult:
        """Convenience entry when no :class:`FaultSimulator` exists yet."""
        return self.run(FaultSimulator(netlist), patterns, faults, drop=drop)


class SerialBackend(FaultSimBackend):
    """One fault, one pattern, full re-simulation (the E3 baseline)."""

    name = "serial"

    def run(self, simulator, patterns, faults, drop=True):
        return simulator._simulate_serial(patterns, faults, drop)


class PpsfpBackend(FaultSimBackend):
    """Single-process bit-parallel PPSFP with cone-limited propagation."""

    name = "ppsfp"

    def run(self, simulator, patterns, faults, drop=True):
        return simulator._simulate_ppsfp(patterns, faults, drop)


# ----------------------------------------------------------------------
# Pool backend
# ----------------------------------------------------------------------

# Per-worker state installed by the pool initializer: the worker's own
# FaultSimulator, the campaign pattern count, the shared good-machine
# response (mapped zero-copy from the arena), and the arena itself —
# kept referenced so the mapping outlives every partition this worker
# runs.
_WORKER_STATE: Optional[Tuple[FaultSimulator, int, Sequence, object]] = None


def _pool_initializer(netlist, word_width, kernel, arena_spec, meta) -> None:
    # Workers must chunk patterns exactly like the parent that produced
    # the good response, so the parent's word width and kernel travel
    # with the state.  Workers never receive the pattern list: PPSFP
    # partitions only need the pattern count and the shared good blocks,
    # which they map read-only from the arena.
    global _WORKER_STATE
    arena, good_chunks = shm.attach_campaign(arena_spec, meta)
    _WORKER_STATE = (
        FaultSimulator(netlist, word_width=word_width, kernel=kernel),
        meta["n_patterns"],
        good_chunks,
        arena,
    )


def _pool_partition(task: Tuple[int, List[StuckAtFault], bool]):
    """Run one fault partition inside a worker; returns a picklable pair."""
    index, partition, drop = task
    assert _WORKER_STATE is not None, "pool worker not initialized"
    simulator, n_patterns, good_chunks, _arena = _WORKER_STATE
    log = EventLog()
    log.emit(PARTITION_BEGIN, "partition", partition=index, faults=len(partition))
    partial = simulator._simulate_ppsfp(
        None, partition, drop, good_chunks=good_chunks, n_patterns=n_patterns
    )
    partial.stats["metrics"] = partition_metrics(partial)
    log.emit(
        PARTITION_END, "partition", partition=index, detected=len(partial.detected)
    )
    partial.stats["worker_events"] = log.to_payload()
    return index, partial


class PoolBackend(FaultSimBackend):
    """Multiprocess PPSFP over deterministic fault partitions.

    ``jobs`` defaults to the machine's CPU count.  ``seed`` fixes the
    partitioning shuffle; ``partitions`` overrides the automatic
    partition count (both independent of ``jobs``, so the merged result
    never depends on how many workers happened to run).  With ``jobs=1``
    the partitions run inline — same shards, same merge, no fork cost.
    """

    name = "pool"

    def __init__(
        self,
        jobs: Optional[int] = None,
        seed: int = 0,
        partitions: Optional[int] = None,
    ):
        validate_pool_args(jobs=jobs, seed=seed, partitions=partitions)
        self.jobs = jobs
        self.seed = seed
        self.partitions = partitions

    def run(self, simulator, patterns, faults, drop=True):
        start_time = time.perf_counter()
        universe = _unique(faults)
        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        jobs = max(1, jobs)
        n_partitions = (
            self.partitions
            if self.partitions is not None
            else default_partition_count(len(universe))
        )
        shards = partition_faults(universe, n_partitions, self.seed)
        tasks = [(index, shard, drop) for index, shard in enumerate(shards)]
        fan_out = bool(tasks) and jobs > 1 and len(tasks) > 1

        good_start = time.perf_counter()
        parallel = simulator.parallel
        passes0, hits0 = parallel.evaluations, parallel.cache_hits
        arena = meta = good_chunks = None
        if fan_out:
            # The packed pattern matrix and good response go into one
            # shared-memory arena that every worker maps read-only —
            # nothing campaign-sized rides the initializer pickle.
            arena, meta = shm.pack_campaign(simulator, patterns)
        else:
            good_chunks = simulator.good_response(patterns)
        good_words = (parallel.evaluations - passes0) * parallel.num_scheduled
        good_hits = parallel.cache_hits - hits0
        good_seconds = time.perf_counter() - good_start

        partials: List[Tuple[int, FaultSimResult]] = []
        try:
            if not tasks:
                pass
            elif not fan_out:
                for task in tasks:
                    t0 = time.perf_counter()
                    log = EventLog()
                    log.emit(
                        PARTITION_BEGIN,
                        "partition",
                        partition=task[0],
                        faults=len(task[1]),
                    )
                    index, partial = self._run_inline(
                        simulator, patterns, task, good_chunks
                    )
                    partial.stats["wall_time_s"] = time.perf_counter() - t0
                    # After the wall-time override, so the histogram sees the
                    # same value the partition stats report.
                    partial.stats["metrics"] = partition_metrics(partial)
                    log.emit(
                        PARTITION_END,
                        "partition",
                        partition=index,
                        detected=len(partial.detected),
                    )
                    partial.stats["worker_events"] = log.to_payload()
                    partials.append((index, partial))
            else:
                context = self._context()
                with context.Pool(
                    processes=min(jobs, len(tasks)),
                    initializer=_pool_initializer,
                    initargs=(
                        simulator.netlist,
                        simulator.word_width,
                        simulator.kernel,
                        arena.spec,
                        meta,
                    ),
                ) as pool:
                    partials = list(
                        pool.imap_unordered(_pool_partition, tasks, chunksize=1)
                    )
        finally:
            # The parent owns the segment: unlink on every exit path —
            # normal completion, worker failure, KeyboardInterrupt.
            if arena is not None:
                arena.destroy()

        result = merge_results(
            [partial for _, partial in partials], universe, len(patterns), drop
        )
        self._fill_stats(
            result, partials, tasks, jobs, good_seconds, good_words, start_time
        )
        result.stats["word_width"] = simulator.word_width
        result.stats["kernel"] = simulator.kernel
        result.stats["good_cache_hits"] = good_hits
        return result

    @staticmethod
    def _run_inline(simulator, patterns, task, good_chunks):
        index, partition, drop = task
        partial = simulator._simulate_ppsfp(
            patterns, partition, drop, good_chunks=good_chunks
        )
        return index, partial

    @staticmethod
    def _context():
        # fork shares the parent's loaded modules and netlist for free;
        # platforms without it (Windows, macOS spawn-default) fall back to
        # the default start method and ship state through the initializer.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _fill_stats(
        self, result, partials, tasks, jobs, good_seconds, good_words, start_time
    ):
        per_partition: List[Dict[str, object]] = []
        merged = MetricRegistry()
        event_payloads: List[Dict[str, object]] = []
        for index, partial in sorted(partials, key=lambda pair: pair[0]):
            stats = partial.stats
            # Journal-replayed partials may predate worker metrics; rebuild
            # their registry from the kept stats so the merge stays total.
            merged.merge_dict(stats.get("metrics") or partition_metrics(partial))
            if stats.get("worker_events"):
                event_payloads.append(stats["worker_events"])
            per_partition.append(
                {
                    "partition": index,
                    "faults": len(tasks[index][1]),
                    "detected": len(partial.detected),
                    "events_propagated": stats.get("events_propagated", 0),
                    "words_evaluated": stats.get("words_evaluated", 0),
                    "wall_time_s": stats.get("wall_time_s", 0.0),
                }
            )
        walls = [p["wall_time_s"] for p in per_partition if p["wall_time_s"] > 0]
        imbalance = (max(walls) / (sum(walls) / len(walls))) if walls else 1.0
        result.stats.update(
            engine="pool",
            jobs=jobs,
            seed=self.seed,
            faults_simulated=result.total_faults,
            # Derived from the merged worker registries rather than the raw
            # partition list: the production totals ride the same
            # associative merge the observability layer guarantees.
            events_propagated=merged.counter("faultsim.events_propagated").value,
            words_evaluated=good_words
            + merged.counter("faultsim.words_evaluated").value,
            good_words_evaluated=good_words,
            good_response_s=good_seconds,
            load_imbalance=round(imbalance, 3),
            partitions=per_partition,
            metrics=merged.to_dict(),
            wall_time_s=time.perf_counter() - start_time,
        )
        if event_payloads:
            result.stats["events"] = event_payloads


_BACKENDS = {
    "serial": SerialBackend,
    "ppsfp": PpsfpBackend,
    "pool": PoolBackend,
}


def get_backend(
    name: str,
    jobs: Optional[int] = None,
    seed: int = 0,
    partitions: Optional[int] = None,
    **supervised_kwargs,
) -> FaultSimBackend:
    """Instantiate a backend by name.

    ``jobs``/``seed``/``partitions`` configure the sharded backends
    (``pool`` and ``supervised``) and are validated up front.  Extra
    keyword arguments (``config``, ``chaos``, ``journal``) are forwarded
    to :class:`repro.sim.supervisor.SupervisedPoolBackend`.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name == "supervised":
        from .supervisor import SupervisedPoolBackend

        return SupervisedPoolBackend(
            jobs=jobs, seed=seed, partitions=partitions, **supervised_kwargs
        )
    if supervised_kwargs:
        raise ValueError(
            f"{sorted(supervised_kwargs)} only apply to the supervised backend"
        )
    if name == "pool":
        return PoolBackend(jobs=jobs, seed=seed, partitions=partitions)
    return _BACKENDS[name]()
