"""Process-wide good-machine response cache.

Fault-simulation flows repeatedly evaluate the *same* fault-free blocks:
ATPG's coverage top-off re-grades phase-2 fills it already simulated once,
LBIST's signature pass re-simulates every pattern the coverage loop just
graded, benchmark sweeps and coverage-curve experiments re-run whole flows
with the same seeds, and hierarchical broadcast grades structurally
identical cores with identical patterns.  Each of those passes walks the
full gate schedule again just to rebuild words it has already computed.

:class:`GoodMachineCache` memoizes packed good-machine responses keyed by
``(netlist structural signature, n_patterns, packed input words)``.  The
signature (see :meth:`repro.circuit.netlist.Netlist.structural_signature`)
is name-independent, so clones and replicated cores share entries.  The
cache is bounded by an approximate byte budget with LRU eviction — wide
words (4096 patterns per block) make entries large, so bounding by entry
*count* alone would not bound memory.

Cached word lists are shared between all callers and MUST be treated as
immutable (every engine in :mod:`repro.sim` already does).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

#: Default byte budget (approximate) for the process-wide cache.  At the
#: default 64-bit word width a 5k-gate block is ~200 KB, so the default
#: budget holds a few hundred blocks; at width 4096 it holds a handful.
DEFAULT_MAX_BYTES = 64 << 20

#: Cache key: (netlist signature, n_patterns, masked packed input words).
CacheKey = Tuple[str, int, Tuple[int, ...]]


class GoodMachineCache:
    """Bounded LRU cache of packed good-machine responses."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[CacheKey, List[int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _entry_bytes(words, n_patterns: int) -> int:
        # Numpy-kernel blocks (repro.sim.npsim.GoodBlock) know their exact
        # array size; bigint lists are estimated — a CPython int costs ~28
        # bytes plus its payload, and the list adds one pointer per element.
        nbytes = getattr(words, "nbytes", None)
        if nbytes is not None:
            return nbytes + 64
        return len(words) * (36 + n_patterns // 8) + 64

    def get(self, key: CacheKey) -> Optional[List[int]]:
        """The cached words for ``key``, or ``None`` (updates LRU order)."""
        words = self._entries.get(key)
        if words is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return words

    def put(self, key: CacheKey, words: List[int], n_patterns: int) -> None:
        """Store a block, evicting least-recently-used entries if needed."""
        cost = self._entry_bytes(words, n_patterns)
        if cost > self.max_bytes:
            return  # one pathological block must not flush everything else
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = words
        self._bytes += cost
        while self._bytes > self.max_bytes and self._entries:
            old_key, old_words = self._entries.popitem(last=False)
            self._bytes -= self._entry_bytes(old_words, old_key[1])
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and ``FaultSimResult.stats`` reporting."""
        return {
            "entries": len(self._entries),
            "approx_bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide cache every simulator uses unless given its own (or
#: ``cache=None`` to disable caching entirely).
DEFAULT_CACHE = GoodMachineCache()

#: Sentinel meaning "use :data:`DEFAULT_CACHE`" in simulator constructors,
#: so ``cache=None`` stays available as the explicit off switch.
USE_DEFAULT = object()


def resolve_cache(cache: object) -> Optional[GoodMachineCache]:
    """Map a constructor's ``cache`` argument to a cache instance or None."""
    if cache is USE_DEFAULT:
        return DEFAULT_CACHE
    if cache is None or isinstance(cache, GoodMachineCache):
        return cache
    raise TypeError(f"cache must be a GoodMachineCache or None, got {cache!r}")
