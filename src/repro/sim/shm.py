"""Zero-copy shared-memory fan-out for the multiprocess backends.

The pool and supervised backends compute the good-machine response once
in the parent and hand it to every worker partition.  Shipping it
through ``initargs``/``Process`` args means one pickle per pool (or,
for the supervised backend, *per partition attempt*) — at ``word_width``
4096 on a replicated accelerator circuit that is megabytes per shard.
:class:`SharedArena` instead places the campaign's read-only blocks —
the packed pattern matrix and the good-machine response — in a single
:mod:`multiprocessing.shared_memory` segment that workers map by name:

* numpy-kernel blocks (uint64 lane arrays) are mapped **zero-copy**:
  the worker's arrays are views straight into the segment;
* python-kernel blocks (bigint word lists) are stored pickled and
  deserialized once per worker process, never per partition.

Lifecycle rules (the chaos suite pins these):

* The **parent owns the segment**: it creates the arena before spawning
  workers and unlinks it in a ``finally`` on every exit path — normal
  completion, worker crashes/timeouts, poisoned partitions, and
  ``KeyboardInterrupt``.  Workers never unlink.
* Workers attach by name and leave resource-tracker bookkeeping alone:
  pool/supervised children inherit the parent's tracker process, whose
  cache is a set, so the attach-side re-register is a no-op and the
  parent's single ``unlink`` retires the name exactly once (see
  :meth:`SharedArena.attach`).
* A worker killed mid-read (chaos ``crash``/``hang`` + timeout kill)
  leaves only its mapping behind, which the OS reclaims with the
  process; the parent's unlink still removes the segment.
"""

from __future__ import annotations

import itertools
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

#: Prefix of every arena segment name: the leak tests scan ``/dev/shm``
#: for it, and operators can attribute stray segments to this package.
SEGMENT_PREFIX = "repro_sim_"

_COUNTER = itertools.count()


def segment_names() -> List[str]:
    """Names of live arena segments on this machine (POSIX ``/dev/shm``)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-POSIX platforms
        return []
    return sorted(name for name in entries if name.startswith(SEGMENT_PREFIX))


@dataclass(frozen=True)
class ArenaBlock:
    """Manifest entry for one block inside the segment."""

    key: str
    kind: str  # "array" | "pickle"
    offset: int
    length: int
    shape: Tuple[int, ...] = ()
    dtype: str = ""


@dataclass(frozen=True)
class ArenaSpec:
    """The picklable handle workers use to attach an arena."""

    name: str
    blocks: Tuple[ArenaBlock, ...]


def _align(offset: int) -> int:
    return (offset + 7) & ~7


class SharedArena:
    """One shared-memory segment holding named read-only blocks."""

    def __init__(self, segment: shared_memory.SharedMemory, spec: ArenaSpec, owner: bool):
        self._segment = segment
        self.spec = spec
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, entries: Dict[str, object]) -> "SharedArena":
        """Pack ``entries`` (numpy arrays or picklable objects) into a
        fresh segment owned by the caller."""
        import numpy as np

        staged: List[Tuple[str, str, object, Tuple[int, ...], str]] = []
        for key, value in entries.items():
            if isinstance(value, np.ndarray):
                array = np.ascontiguousarray(value)
                staged.append((key, "array", array, array.shape, array.dtype.str))
            else:
                staged.append(
                    (key, "pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), (), "")
                )
        blocks: List[ArenaBlock] = []
        offset = 0
        for key, kind, payload, shape, dtype in staged:
            length = payload.nbytes if kind == "array" else len(payload)
            offset = _align(offset)
            blocks.append(ArenaBlock(key, kind, offset, length, tuple(shape), dtype))
            offset += length
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_COUNTER)}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        view = segment.buf
        for block, (_, kind, payload, _, _) in zip(blocks, staged):
            if kind == "array":
                flat = np.ndarray(
                    (block.length,), dtype=np.uint8, buffer=view, offset=block.offset
                )
                flat[:] = payload.reshape(-1).view(np.uint8)
            else:
                view[block.offset : block.offset + block.length] = payload
        return cls(segment, ArenaSpec(name=name, blocks=tuple(blocks)), owner=True)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedArena":
        """Map an existing arena read-only (worker side).

        Attaching re-registers the name with the resource tracker, but
        pool/supervised workers inherit the *parent's* tracker process
        (fork and spawn both pass the tracker fd down), whose cache is a
        set — the duplicate register is a no-op and the parent's single
        ``unlink`` retires the name exactly once.  Do **not** unregister
        here: that would strip the parent's own registration and leave
        the tracker complaining about (or double-unlinking) the segment.
        Only a process attached from *outside* the multiprocessing tree
        (its own tracker) would need ``resource_tracker.unregister``.
        """
        segment = shared_memory.SharedMemory(name=spec.name)
        return cls(segment, spec, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: str) -> object:
        """The block stored under ``key``: a read-only array view for
        ``"array"`` blocks (zero-copy), the unpickled object otherwise."""
        import numpy as np

        for block in self.spec.blocks:
            if block.key != key:
                continue
            if block.kind == "array":
                array = np.ndarray(
                    block.shape,
                    dtype=np.dtype(block.dtype),
                    buffer=self._segment.buf,
                    offset=block.offset,
                )
                array.flags.writeable = False
                return array
            raw = bytes(self._segment.buf[block.offset : block.offset + block.length])
            return pickle.loads(raw)
        raise KeyError(key)

    def keys(self) -> List[str]:
        return [block.key for block in self.spec.blocks]

    @property
    def nbytes(self) -> int:
        return self._segment.size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent).

        Note: closing invalidates any zero-copy views previously handed
        out by :meth:`get` — workers keep the arena open for the lifetime
        of the process instead.
        """
        if not self._closed:
            self._closed = True
            try:
                self._segment.close()
            except BufferError:
                # Live views still point into the mapping (CPython keeps
                # the buffer pinned); the unlink below still frees the name
                # and the OS reclaims the memory when the views die.
                self._closed = False

    def destroy(self) -> None:
        """Owner-side teardown: close the mapping and unlink the name.

        Safe on every exit path — already-unlinked segments are ignored,
        so crash/retry/interrupt handlers can all call it unconditionally.
        """
        self.close()
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Campaign fan-out (used by the pool and supervised backends)
# ----------------------------------------------------------------------


def pack_campaign(simulator, patterns: Sequence[Sequence[int]]):
    """Place one campaign's shared blocks into a fresh arena.

    Computes the packed pattern matrix and the good-machine response for
    every ``word_width`` chunk (through the simulator's good-machine
    cache) and stores them in a single segment.  Returns
    ``(arena, meta)`` where ``meta`` is the small picklable dict workers
    need alongside the arena spec: total pattern count, per-chunk lane
    counts, word width, and kernel name.
    """
    n_patterns = len(patterns)
    width = simulator.word_width
    chunk_counts = [
        min(width, n_patterns - start) for start in range(0, n_patterns, width)
    ]
    meta = {
        "n_patterns": n_patterns,
        "chunk_counts": chunk_counts,
        "word_width": width,
        "kernel": simulator.kernel,
    }
    if simulator.kernel == "numpy":
        from . import npsim

        np_kernel = simulator.parallel.np_kernel
        bits = npsim.as_bit_matrix(patterns)
        entries: Dict[str, object] = {}
        for index, start in enumerate(range(0, n_patterns, width)):
            packed = np_kernel.pack_block(bits[start : start + width])
            block = simulator.parallel.evaluate_array(packed, chunk_counts[index])
            entries[f"patterns/{index}"] = packed
            entries[f"good/{index}"] = block.values
        return SharedArena.create(entries), meta
    return (
        SharedArena.create({"good": simulator.good_response(patterns)}),
        meta,
    )


def good_chunks_from(arena: SharedArena, meta: Dict[str, object]):
    """Rebuild the good-chunk list from an arena (either side).

    Numpy-kernel chunks come back as zero-copy
    :class:`repro.sim.npsim.GoodBlock` views into the segment; python
    kernel chunks are unpickled.  The arena must stay open as long as
    the chunks are in use.
    """
    if meta["kernel"] == "numpy":
        from . import npsim

        return [
            npsim.GoodBlock(arena.get(f"good/{index}"), count)
            for index, count in enumerate(meta["chunk_counts"])
        ]
    return arena.get("good")


def attach_campaign(spec: ArenaSpec, meta: Dict[str, object]):
    """Worker-side: map the arena and rebuild the good-chunk list.

    The returned arena must stay open as long as the chunks are in use
    (workers keep it for the process lifetime).
    """
    arena = SharedArena.attach(spec)
    return arena, good_chunks_from(arena, meta)
