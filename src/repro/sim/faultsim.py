"""Fault simulation engines.

Three stuck-at engines are provided, matching the E3 experiment:

* **serial** — one fault, one pattern, full-circuit re-evaluation.  The
  textbook baseline; trivially correct, painfully slow.
* **ppsfp** — Parallel-Pattern Single-Fault Propagation: ``word_width``
  patterns per machine word (64 by default, up to 4096), good machine
  simulated once per word, each fault then propagated event-wise through
  its fanout cone only.  With fault dropping this is the production
  algorithm every commercial fault simulator uses.
* **pool** — the PPSFP kernel sharded across a :mod:`multiprocessing` pool
  (see :mod:`repro.sim.dispatch`): the collapsed fault list is partitioned
  deterministically, each worker runs cone-limited PPSFP against a shared
  good-machine response, and the partial results are min-merged.

Transition-delay (launch-on-capture pairs) and bridging faults reuse the
same cone machinery.

Every ``simulate*`` call fills :attr:`FaultSimResult.stats` with
per-run instrumentation (faults simulated, cone events propagated, packed
words evaluated, wall time) so benchmarks can report speedup and detect
load imbalance without re-deriving counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import GateType, compile_parallel_evaluator, evaluate_parallel
from ..circuit.netlist import Netlist
from ..faults.model import OUTPUT_PIN, BridgingFault, StuckAtFault, TransitionFault
from . import goodcache
from .parallel import WORD_WIDTH, ParallelSimulator

#: ``stats`` keys the parent process contributes to the observation's
#: ``faultsim.*`` counters — the good-machine side of a run, which no
#: worker partition ever sees.  Worker-side counters (events, words,
#: faults) come either from the same stats (single-process engines) or
#: from the merged per-partition metric registries (pool/supervised).
_PARENT_STAT_KEYS = (
    "good_passes",
    "good_cache_hits",
    "good_cache_misses",
    "good_cache_evictions",
    "good_response_s",
    "wall_time_s",
)

#: Supervisor recovery stats that become first-class ``supervisor.*``
#: counters when present.
_SUPERVISOR_STAT_KEYS = (
    "retries",
    "worker_crashes",
    "timeouts",
    "invalid_results",
    "inline_fallbacks",
    "journal_skipped",
)


def _unique(faults: Iterable[object]) -> List[object]:
    """Requested fault universe, first-occurrence order, duplicates removed.

    Callers may hand the same fault twice (e.g. a subset assembled from
    several heuristics); counting it twice would understate coverage and
    list it twice among the survivors.
    """
    return list(dict.fromkeys(faults))


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    ``detected`` maps each detected fault to the index of the first pattern
    that caught it; ``undetected`` lists survivors.  ``coverage`` is the
    detected fraction of the simulated universe.  ``stats`` carries engine
    instrumentation: ``faults_simulated``, ``events_propagated``,
    ``words_evaluated``, ``wall_time_s``, and for the pool backend a
    ``partitions`` list with the same counters per worker partition.
    """

    total_faults: int
    detected: Dict[object, int] = field(default_factory=dict)
    undetected: List[object] = field(default_factory=list)
    patterns_simulated: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return len(self.detected) / self.total_faults

    def detections_by_pattern(self) -> Dict[int, int]:
        """Histogram: pattern index -> number of faults it first detected."""
        histogram: Dict[int, int] = {}
        for pattern_index in self.detected.values():
            histogram[pattern_index] = histogram.get(pattern_index, 0) + 1
        return histogram


class FaultSimulator:
    """Stuck-at / transition / bridging fault simulation over one netlist.

    ``word_width`` sets the patterns packed per PPSFP word (default 64; see
    :data:`repro.sim.parallel.WORD_WIDTHS` for the characterized ladder) —
    results are bit-identical for every width.  ``cache`` configures the
    good-machine response cache (default: the process-wide cache; ``None``
    disables it).
    """

    def __init__(
        self,
        netlist: Netlist,
        word_width: int = WORD_WIDTH,
        cache: object = goodcache.USE_DEFAULT,
        kernel: str = "python",
    ):
        netlist.finalize()
        self.netlist = netlist
        self.parallel = ParallelSimulator(
            netlist, word_width=word_width, cache=cache, kernel=kernel
        )
        self.kernel = self.parallel.kernel
        self.word_width = self.parallel.word_width
        self.view = self.parallel.view
        # Numpy-kernel cone evaluators (uint64 lane arrays); the python
        # closures below are always compiled too — the serial engine and
        # the transition/bridging flows stay on bigint words regardless of
        # the kernel, and both kernels produce bit-identical results.
        np_kernel = self.parallel.np_kernel
        self._np_evaluators = np_kernel.evaluators if np_kernel is not None else None
        self._np_consumers = None
        # Per-gate compiled evaluators for cone propagation: the gate-type
        # dispatch chain is resolved once here instead of once per event.
        self._evaluators = [
            None
            if gate.type == GateType.INPUT
            else compile_parallel_evaluator(gate.type, len(gate.fanin))
            for gate in netlist.gates
        ]
        order = netlist.topo_order
        self._topo_position = [0] * len(netlist.gates)
        for position, gate_index in enumerate(order):
            self._topo_position[gate_index] = position
        if self._np_evaluators is not None:
            # Pre-filtered heap entries per gate — (topo position, consumer)
            # for every non-sequential consumer — so the numpy event loop
            # never touches gate properties while scheduling.
            self._np_consumers = [
                tuple(
                    (self._topo_position[consumer], consumer)
                    for consumer in gate.fanout
                    if not netlist.gates[consumer].is_sequential
                )
                for gate in netlist.gates
            ]
        # Observation readers and, for branch-into-observation faults, the
        # set of (reader position -> gate read).
        self._readers = list(self.view.output_readers)
        self._reader_set = set(self._readers)
        # Lifetime instrumentation counters; simulate* methods snapshot
        # deltas into FaultSimResult.stats.
        self._events_propagated = 0
        self._words_evaluated = 0

    def _snapshot(self) -> Tuple[int, int, int, int, int, int, float]:
        parallel = self.parallel
        cache = parallel.cache
        return (
            self._events_propagated,
            self._words_evaluated,
            parallel.evaluations,
            parallel.cache_hits,
            parallel.cache_misses,
            cache.evictions if cache is not None else 0,
            time.perf_counter(),
        )

    def _fill_stats(
        self,
        result: FaultSimResult,
        engine: str,
        since: Tuple[int, int, int, int, int, int, float],
    ) -> FaultSimResult:
        events0, words0, passes0, hits0, misses0, evictions0, t0 = since
        parallel = self.parallel
        cache = parallel.cache
        good_passes = parallel.evaluations - passes0
        result.stats.update(
            engine=engine,
            kernel=self.kernel,
            word_width=self.word_width,
            faults_simulated=result.total_faults,
            events_propagated=self._events_propagated - events0,
            words_evaluated=self._words_evaluated
            - words0
            + good_passes * parallel.num_scheduled,
            good_passes=good_passes,
            good_cache_hits=parallel.cache_hits - hits0,
            good_cache_misses=parallel.cache_misses - misses0,
            good_cache_evictions=(
                (cache.evictions - evictions0) if cache is not None else 0
            ),
            wall_time_s=time.perf_counter() - t0,
        )
        return result

    def _publish(self, result: FaultSimResult) -> FaultSimResult:
        """Mirror a finished run's ``stats`` into the active observation.

        The counters are *derived from the same values* ``stats`` holds,
        so a RunReport's ``faultsim.*`` counters bit-identically match the
        legacy stats dict for every engine.  Pool/supervised runs carry a
        merged per-partition metric registry in ``stats["metrics"]``
        (built worker-side, merged in the parent); single-process runs
        publish the equivalent counters straight from stats.
        """
        observation = obs.current()
        if observation is None:
            return result
        stats = result.stats
        worker_metrics = stats.get("metrics")
        if worker_metrics:
            # Worker-side counters (events, partition words, faults) come
            # home through the associative registry merge; the parent adds
            # only its own good-machine word contribution on top so the
            # total equals stats["words_evaluated"] exactly.
            observation.merge_metrics(worker_metrics)
            observation.counter("faultsim.words_evaluated").add(
                stats.get("good_words_evaluated", 0)
            )
        else:
            observation.add_counters(
                "faultsim",
                {
                    key: stats[key]
                    for key in (
                        "faults_simulated",
                        "events_propagated",
                        "words_evaluated",
                    )
                    if key in stats
                },
            )
            observation.counter("faultsim.faults_detected").add(
                len(result.detected)
            )
        observation.add_counters(
            "faultsim",
            {key: stats[key] for key in _PARENT_STAT_KEYS if key in stats},
        )
        observation.counter("faultsim.patterns_simulated").add(
            result.patterns_simulated
        )
        observation.counter("faultsim.runs").add(1)
        observation.add_counters(
            "supervisor",
            {key: stats[key] for key in _SUPERVISOR_STAT_KEYS if key in stats},
        )
        if "failed_partitions" in stats:
            observation.counter("supervisor.failed_partitions").add(
                len(stats["failed_partitions"])
            )
        # Worker/supervisor telemetry events come home the same way the
        # metric registries do: shipped payloads in stats, stitched onto
        # the observation's own monotonic timeline.
        for payload in stats.get("events", ()):
            observation.merge_events(payload)
        return result

    # ------------------------------------------------------------------
    # Core cone propagation
    # ------------------------------------------------------------------

    def _propagate(
        self,
        seeds: Dict[int, int],
        good: Sequence[int],
        mask: int,
    ) -> Dict[int, int]:
        """Propagate faulty words from ``seeds`` through fanout cones.

        ``seeds`` maps gate index -> faulty word (already different from the
        good word, or the propagation stops immediately).  Returns the map
        of all gates whose faulty word differs from good.
        """
        gates = self.netlist.gates
        evaluators = self._evaluators
        faulty: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = []
        enqueued = set()

        def schedule(gate_index: int) -> None:
            if gate_index not in enqueued:
                enqueued.add(gate_index)
                heappush(heap, (self._topo_position[gate_index], gate_index))

        for gate_index, word in seeds.items():
            if word != good[gate_index]:
                faulty[gate_index] = word
                for consumer in gates[gate_index].fanout:
                    if not gates[consumer].is_sequential:
                        schedule(consumer)

        while heap:
            _, gate_index = heappop(heap)
            enqueued.discard(gate_index)
            gate = gates[gate_index]
            inputs = [faulty.get(driver, good[driver]) for driver in gate.fanin]
            word = evaluators[gate_index](inputs, mask)
            self._events_propagated += 1
            self._words_evaluated += 1
            if word == good[gate_index]:
                faulty.pop(gate_index, None)
                continue
            if faulty.get(gate_index) == word:
                continue
            faulty[gate_index] = word
            for consumer in gate.fanout:
                if not gates[consumer].is_sequential:
                    schedule(consumer)
        return faulty

    def _stuck_at_seeds(
        self, fault: StuckAtFault, good: Sequence[int], mask: int
    ) -> Dict[int, int]:
        """Initial faulty words for a stuck-at fault."""
        gates = self.netlist.gates
        forced = mask if fault.value else 0
        if fault.pin == OUTPUT_PIN:
            return {fault.gate: forced}
        gate = gates[fault.gate]
        if gate.type == GateType.OUTPUT or gate.is_sequential:
            # Branch straight into an observation point: handled at readout.
            return {}
        inputs = [good[driver] for driver in gate.fanin]
        inputs[fault.pin] = forced
        self._words_evaluated += 1
        return {fault.gate: self._evaluators[fault.gate](inputs, mask)}

    def _detection_word(
        self,
        fault: StuckAtFault,
        good: Sequence[int],
        faulty: Dict[int, int],
        mask: int,
    ) -> int:
        """Patterns (bitmask) on which the fault effect reaches observation."""
        diff = 0
        for reader in self._readers:
            diff |= faulty.get(reader, good[reader]) ^ good[reader]
        # A branch fault feeding a PO or flop D pin is observed directly at
        # that single observation position, bypassing the stem value.
        if fault.pin != OUTPUT_PIN:
            gate = self.netlist.gates[fault.gate]
            if gate.type == GateType.OUTPUT or gate.is_sequential:
                forced = mask if fault.value else 0
                driver = gate.fanin[fault.pin]
                observed_good = good[driver]
                diff |= forced ^ observed_good
        return diff & mask

    # ------------------------------------------------------------------
    # Stuck-at engines
    # ------------------------------------------------------------------

    def simulate(
        self,
        patterns: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
        drop: bool = True,
        engine: object = "ppsfp",
        jobs: Optional[int] = None,
        seed: int = 0,
        partitions: Optional[int] = None,
    ) -> FaultSimResult:
        """Run stuck-at fault simulation.

        With ``drop`` true (default) a fault leaves the active list at its
        first detection; otherwise every fault sees every pattern (useful
        for building diagnosis dictionaries and detection profiles).

        ``engine`` selects the backend by name — ``"serial"``,
        ``"ppsfp"``, ``"pool"`` (multiprocess PPSFP), or ``"supervised"``
        (fault-tolerant multiprocess, see :mod:`repro.sim.supervisor`) —
        or is a ready :class:`repro.sim.dispatch.FaultSimBackend`
        instance, which lets callers attach journals, timeouts, or chaos
        plans.  ``jobs`` sizes the worker pool; ``seed`` and
        ``partitions`` control the deterministic fault sharding — results
        are identical for any worker count.
        """
        if not isinstance(engine, str):
            runner = lambda: engine.run(self, patterns, faults, drop=drop)
            engine_name = type(engine).__name__
        elif engine == "ppsfp":
            runner = lambda: self._simulate_ppsfp(patterns, faults, drop)
            engine_name = engine
        elif engine == "serial":
            runner = lambda: self._simulate_serial(patterns, faults, drop)
            engine_name = engine
        elif engine == "pool":
            from .dispatch import PoolBackend

            backend = PoolBackend(jobs=jobs, seed=seed, partitions=partitions)
            runner = lambda: backend.run(self, patterns, faults, drop=drop)
            engine_name = engine
        elif engine == "supervised":
            from .supervisor import SupervisedPoolBackend

            backend = SupervisedPoolBackend(
                jobs=jobs, seed=seed, partitions=partitions
            )
            runner = lambda: backend.run(self, patterns, faults, drop=drop)
            engine_name = engine
        else:
            raise ValueError(f"unknown engine {engine!r}")
        # Span only multi-pattern runs: ATPG phase 2 / compression call in
        # here once per candidate cube, and a span per cube would drown the
        # tree.  Counters still accumulate for every run via _publish.
        if obs.current() is not None and len(patterns) > 1:
            with obs.span("faultsim", engine=engine_name, patterns=len(patterns)):
                return self._publish(runner())
        return self._publish(runner())

    def good_response(self, patterns: Sequence[Sequence[int]]) -> List[object]:
        """Good-machine response for every ``word_width`` chunk of ``patterns``.

        One block per chunk — the shared response the pool backends compute
        once and hand to every worker partition: a list of packed gate
        words under the python kernel, a :class:`repro.sim.npsim.GoodBlock`
        under the numpy kernel.  Chunks already in the good-machine cache
        are served without a pass.
        """
        chunks: List[object] = []
        width = self.word_width
        if self.kernel == "numpy":
            from . import npsim

            np_kernel = self.parallel.np_kernel
            bits = npsim.as_bit_matrix(patterns)
            for start in range(0, len(bits), width):
                chunk = bits[start : start + width]
                chunks.append(
                    self.parallel.evaluate_array(
                        np_kernel.pack_block(chunk), len(chunk)
                    )
                )
            return chunks
        for start in range(0, len(patterns), width):
            chunk = patterns[start : start + width]
            chunks.append(
                self.parallel.evaluate_words(
                    self.parallel.pack_block(chunk), len(chunk)
                )
            )
        return chunks

    def _simulate_ppsfp(
        self,
        patterns: Optional[Sequence[Sequence[int]]],
        faults: Iterable[StuckAtFault],
        drop: bool,
        good_chunks: Optional[Sequence[object]] = None,
        n_patterns: Optional[int] = None,
    ) -> FaultSimResult:
        """PPSFP on the configured kernel.

        ``patterns`` may be ``None`` when ``good_chunks`` and ``n_patterns``
        are given — worker partitions never re-pack patterns, so backends
        fanning the good response out through shared memory do not ship the
        pattern list at all.
        """
        if self.kernel == "numpy":
            return self._simulate_ppsfp_np(
                patterns, faults, drop, good_chunks, n_patterns
            )
        since = self._snapshot()
        active = _unique(faults)
        result = FaultSimResult(total_faults=len(active))
        width = self.word_width
        total = len(patterns) if patterns is not None else n_patterns
        for chunk_index, start in enumerate(range(0, total, width)):
            if drop and not active:
                break
            n = min(width, total - start)
            mask = (1 << n) - 1
            if good_chunks is not None:
                good = good_chunks[chunk_index]
            else:
                good = self.parallel.evaluate_words(
                    self.parallel.pack_block(patterns[start : start + n]), n
                )
            survivors: List[StuckAtFault] = []
            for fault in active:
                seeds = self._stuck_at_seeds(fault, good, mask)
                faulty = self._propagate(seeds, good, mask) if seeds else {}
                detect = self._detection_word(fault, good, faulty, mask)
                if detect:
                    first_bit = (detect & -detect).bit_length() - 1
                    if fault not in result.detected:
                        result.detected[fault] = start + first_bit
                    if not drop:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
            result.patterns_simulated = min(start + n, total)
        result.undetected = [f for f in active if f not in result.detected]
        if not drop:
            result.patterns_simulated = total
        return self._fill_stats(result, "ppsfp", since)

    # ------------------------------------------------------------------
    # Numpy-kernel stuck-at PPSFP (repro.sim.npsim)
    # ------------------------------------------------------------------
    #
    # Structurally isomorphic to the bigint path above — same seeds, same
    # event-driven cone propagation, same convergence rule — so detected
    # maps, undetected order, patterns_simulated, AND the deterministic
    # events/words counters are bit-identical between kernels (the
    # conformance suite pins this).  Words are (n_lanes,) uint64 arrays;
    # convergence compares raw row bytes (~10x cheaper than array_equal
    # at these sizes).

    def _propagate_np(self, seeds, good, mask):
        gates = self.netlist.gates
        evaluators = self._np_evaluators
        consumers = self._np_consumers
        values = good.values
        faulty: Dict[int, object] = {}
        faulty_bytes: Dict[int, bytes] = {}
        heap: List[Tuple[int, int]] = []
        enqueued = set()
        events = 0

        for gate_index, word in seeds.items():
            raw = word.tobytes()
            if raw != good.row_bytes(gate_index):
                faulty[gate_index] = word
                faulty_bytes[gate_index] = raw
                for entry in consumers[gate_index]:
                    if entry[1] not in enqueued:
                        enqueued.add(entry[1])
                        heappush(heap, entry)

        while heap:
            _, gate_index = heappop(heap)
            enqueued.discard(gate_index)
            inputs = [
                faulty[driver] if driver in faulty else values[driver]
                for driver in gates[gate_index].fanin
            ]
            word = evaluators[gate_index](inputs, mask)
            events += 1
            raw = word.tobytes()
            if raw == good.row_bytes(gate_index):
                faulty.pop(gate_index, None)
                faulty_bytes.pop(gate_index, None)
                continue
            if faulty_bytes.get(gate_index) == raw:
                continue
            faulty[gate_index] = word
            faulty_bytes[gate_index] = raw
            for entry in consumers[gate_index]:
                if entry[1] not in enqueued:
                    enqueued.add(entry[1])
                    heappush(heap, entry)
        self._events_propagated += events
        self._words_evaluated += events
        return faulty

    def _stuck_at_seeds_np(self, fault: StuckAtFault, good, mask):
        gates = self.netlist.gates
        np_kernel = self.parallel.np_kernel
        forced = mask if fault.value else np_kernel.zero(good.n_patterns)
        if fault.pin == OUTPUT_PIN:
            return {fault.gate: forced}
        gate = gates[fault.gate]
        if gate.type == GateType.OUTPUT or gate.is_sequential:
            # Branch straight into an observation point: handled at readout.
            return {}
        inputs = [good.values[driver] for driver in gate.fanin]
        inputs[fault.pin] = forced
        self._words_evaluated += 1
        return {fault.gate: self._np_evaluators[fault.gate](inputs, mask)}

    def _detection_word_np(self, fault: StuckAtFault, good, faulty, mask):
        """Lane-array twin of :meth:`_detection_word` (or ``None``).

        Only readers present in the faulty map contribute — every other
        reader XORs to zero — which replaces the all-readers loop that
        dominates the python kernel's readout on replicated circuits.
        """
        diff = None
        values = good.values
        for reader in faulty.keys() & self._reader_set:
            delta = faulty[reader] ^ values[reader]
            if diff is None:
                diff = delta
            else:
                diff |= delta
        if fault.pin != OUTPUT_PIN:
            gate = self.netlist.gates[fault.gate]
            if gate.type == GateType.OUTPUT or gate.is_sequential:
                np_kernel = self.parallel.np_kernel
                forced = mask if fault.value else np_kernel.zero(good.n_patterns)
                driver = gate.fanin[fault.pin]
                delta = forced ^ values[driver]
                diff = delta if diff is None else diff | delta
        if diff is not None:
            diff &= mask
        return diff

    def _simulate_ppsfp_np(
        self,
        patterns: Optional[Sequence[Sequence[int]]],
        faults: Iterable[StuckAtFault],
        drop: bool,
        good_chunks: Optional[Sequence[object]] = None,
        n_patterns: Optional[int] = None,
    ) -> FaultSimResult:
        from . import npsim

        since = self._snapshot()
        active = _unique(faults)
        result = FaultSimResult(total_faults=len(active))
        width = self.word_width
        np_kernel = self.parallel.np_kernel
        total = len(patterns) if patterns is not None else n_patterns
        bits = npsim.as_bit_matrix(patterns) if good_chunks is None else None
        for chunk_index, start in enumerate(range(0, total, width)):
            if drop and not active:
                break
            n = min(width, total - start)
            mask = np_kernel.mask(n)
            if good_chunks is not None:
                good = good_chunks[chunk_index]
            else:
                good = self.parallel.evaluate_array(
                    np_kernel.pack_block(bits[start : start + n]), n
                )
            survivors: List[StuckAtFault] = []
            for fault in active:
                seeds = self._stuck_at_seeds_np(fault, good, mask)
                faulty = self._propagate_np(seeds, good, mask) if seeds else {}
                diff = self._detection_word_np(fault, good, faulty, mask)
                first_bit = (
                    npsim.first_pattern_bit(diff) if diff is not None else None
                )
                if first_bit is not None:
                    if fault not in result.detected:
                        result.detected[fault] = start + first_bit
                    if not drop:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
            result.patterns_simulated = min(start + n, total)
        result.undetected = [f for f in active if f not in result.detected]
        if not drop:
            result.patterns_simulated = total
        return self._fill_stats(result, "ppsfp", since)

    def _simulate_serial(
        self,
        patterns: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
        drop: bool,
    ) -> FaultSimResult:
        """Naive engine: full re-simulation per (fault, pattern)."""
        since = self._snapshot()
        active = _unique(faults)
        result = FaultSimResult(total_faults=len(active))
        for pattern_index, pattern in enumerate(patterns):
            if drop and not active:
                break
            input_words = [int(bit) for bit in pattern]
            good = self.parallel.evaluate_words(input_words, 1)
            survivors: List[StuckAtFault] = []
            for fault in active:
                if self._serial_detects(fault, input_words, good):
                    if fault not in result.detected:
                        result.detected[fault] = pattern_index
                    if not drop:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
            result.patterns_simulated = pattern_index + 1
        result.undetected = [f for f in active if f not in result.detected]
        if not drop:
            result.patterns_simulated = len(patterns)
        return self._fill_stats(result, "serial", since)

    def _serial_detects(
        self, fault: StuckAtFault, input_words: Sequence[int], good: Sequence[int]
    ) -> bool:
        """Full faulty-machine evaluation of one pattern (width-1 words)."""
        gates = self.netlist.gates
        words: List[int] = [0] * len(gates)
        self._words_evaluated += self.parallel.num_scheduled
        forced = 1 if fault.value else 0
        for position, gate_index in enumerate(self.view.input_gates):
            words[gate_index] = input_words[position] & 1
        if fault.pin == OUTPUT_PIN and gates[fault.gate].type == GateType.INPUT:
            words[fault.gate] = forced
        for gate_index in self.netlist.topo_order:
            gate = gates[gate_index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                if fault.pin == OUTPUT_PIN and gate_index == fault.gate:
                    words[gate_index] = forced
                continue
            inputs = [words[driver] for driver in gate.fanin]
            if gate_index == fault.gate and fault.pin != OUTPUT_PIN:
                inputs[fault.pin] = forced
            value = evaluate_parallel(gate.type, inputs, 1)
            if gate_index == fault.gate and fault.pin == OUTPUT_PIN:
                value = forced
            words[gate_index] = value
        for reader in self._readers:
            if words[reader] != good[reader]:
                return True
        if fault.pin != OUTPUT_PIN:
            gate = gates[fault.gate]
            if gate.type == GateType.OUTPUT or gate.is_sequential:
                if forced != good[gate.fanin[fault.pin]]:
                    return True
        return False

    # ------------------------------------------------------------------
    # Per-fault failure signatures (diagnosis support)
    # ------------------------------------------------------------------

    def failure_signature(
        self, patterns: Sequence[Sequence[int]], fault: StuckAtFault
    ) -> Dict[int, Tuple[int, ...]]:
        """Exactly which outputs fail on which patterns for one fault.

        Returns ``{pattern_index: (failing output positions...)}`` over the
        view's response vector (POs then flop D's).  This is the signature
        fault dictionaries store and effect-cause diagnosis compares.
        """
        signature: Dict[int, Tuple[int, ...]] = {}
        width = self.word_width
        for start in range(0, len(patterns), width):
            chunk = patterns[start : start + width]
            n = len(chunk)
            mask = (1 << n) - 1
            good = self.parallel.evaluate_words(self.parallel.pack_block(chunk), n)
            seeds = self._stuck_at_seeds(fault, good, mask)
            faulty = self._propagate(seeds, good, mask) if seeds else {}
            per_output_diff: List[int] = []
            for reader in self._readers:
                per_output_diff.append(
                    (faulty.get(reader, good[reader]) ^ good[reader]) & mask
                )
            # Direct observation of branch-into-observation faults.
            if fault.pin != OUTPUT_PIN:
                gate = self.netlist.gates[fault.gate]
                if gate.type == GateType.OUTPUT or gate.is_sequential:
                    forced = mask if fault.value else 0
                    driver = gate.fanin[fault.pin]
                    position = self._direct_reader_position(fault.gate)
                    if position is not None:
                        per_output_diff[position] |= (forced ^ good[driver]) & mask
            for bit in range(n):
                failing = tuple(
                    position
                    for position, diff in enumerate(per_output_diff)
                    if (diff >> bit) & 1
                )
                if failing:
                    signature[start + bit] = failing
        return signature

    def _direct_reader_position(self, observation_gate: int) -> Optional[int]:
        """Response-vector position of a PO marker or flop gate."""
        if observation_gate in self.netlist.outputs:
            return self.netlist.outputs.index(observation_gate)
        if observation_gate in self.netlist.flops:
            return len(self.netlist.outputs) + self.netlist.flops.index(
                observation_gate
            )
        return None

    # ------------------------------------------------------------------
    # Transition-delay faults (launch-on-capture pairs)
    # ------------------------------------------------------------------

    def simulate_transition(
        self,
        pattern_pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
        faults: Iterable[TransitionFault],
        drop: bool = True,
    ) -> FaultSimResult:
        """Simulate transition faults against launch/capture pattern pairs.

        A fault is detected by a pair when the good machine launches the
        required transition at the fault site and the capture vector
        propagates the transient stuck-at effect to an observation point.
        """
        since = self._snapshot()
        active = _unique(faults)
        result = FaultSimResult(total_faults=len(active))
        width = self.word_width
        for start in range(0, len(pattern_pairs), width):
            if drop and not active:
                break
            chunk = pattern_pairs[start : start + width]
            n = len(chunk)
            mask = (1 << n) - 1
            # The pack buffer is reused, so each packed block is consumed by
            # evaluate_words before the next pack overwrites it.
            good_launch = self.parallel.evaluate_words(
                self.parallel.pack_block([pair[0] for pair in chunk]), n
            )
            good_capture = self.parallel.evaluate_words(
                self.parallel.pack_block([pair[1] for pair in chunk]), n
            )
            survivors: List[TransitionFault] = []
            for fault in active:
                site_launch = self._site_value(fault, good_launch)
                site_capture = self._site_value(fault, good_capture)
                if fault.slow_to == 1:
                    transition = ~site_launch & site_capture  # 0 -> 1
                else:
                    transition = site_launch & ~site_capture  # 1 -> 0
                transition &= mask
                if not transition:
                    survivors.append(fault)
                    continue
                stuck = StuckAtFault(fault.gate, fault.pin, fault.acts_as_stuck)
                seeds = self._stuck_at_seeds(stuck, good_capture, mask)
                faulty = self._propagate(seeds, good_capture, mask) if seeds else {}
                detect = self._detection_word(stuck, good_capture, faulty, mask)
                detect &= transition
                if detect:
                    first_bit = (detect & -detect).bit_length() - 1
                    if fault not in result.detected:
                        result.detected[fault] = start + first_bit
                    if not drop:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
            result.patterns_simulated = min(start + n, len(pattern_pairs))
        result.undetected = [f for f in active if f not in result.detected]
        if not drop:
            result.patterns_simulated = len(pattern_pairs)
        return self._publish(
            self._fill_stats(result, "ppsfp-transition", since)
        )

    def _site_value(self, fault, good: Sequence[int]) -> int:
        """Good-machine word at a fault site (branch value = stem value)."""
        if fault.pin == OUTPUT_PIN:
            return good[fault.gate]
        driver = self.netlist.gates[fault.gate].fanin[fault.pin]
        return good[driver]

    # ------------------------------------------------------------------
    # Bridging faults
    # ------------------------------------------------------------------

    def simulate_bridging(
        self,
        patterns: Sequence[Sequence[int]],
        faults: Iterable[BridgingFault],
        drop: bool = True,
    ) -> FaultSimResult:
        """Simulate wired-logic bridges.

        Approximation: the shorted values are resolved from the good-machine
        driven values and then propagated once (no fixpoint iteration), the
        standard zero-feedback assumption for prototype bridging analysis.
        """
        since = self._snapshot()
        active = _unique(faults)
        result = FaultSimResult(total_faults=len(active))
        width = self.word_width
        for start in range(0, len(patterns), width):
            if drop and not active:
                break
            chunk = patterns[start : start + width]
            n = len(chunk)
            mask = (1 << n) - 1
            good = self.parallel.evaluate_words(self.parallel.pack_block(chunk), n)
            survivors: List[BridgingFault] = []
            for fault in active:
                value_a, value_b = good[fault.net_a], good[fault.net_b]
                forced_a, forced_b = _resolve_words(fault, value_a, value_b, mask)
                seeds = {}
                if forced_a != value_a:
                    seeds[fault.net_a] = forced_a
                if forced_b != value_b:
                    seeds[fault.net_b] = forced_b
                faulty = self._propagate(seeds, good, mask) if seeds else {}
                diff = 0
                for reader in self._readers:
                    diff |= faulty.get(reader, good[reader]) ^ good[reader]
                diff &= mask
                if diff:
                    first_bit = (diff & -diff).bit_length() - 1
                    if fault not in result.detected:
                        result.detected[fault] = start + first_bit
                    if not drop:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
            result.patterns_simulated = min(start + n, len(patterns))
        result.undetected = [f for f in active if f not in result.detected]
        if not drop:
            result.patterns_simulated = len(patterns)
        return self._publish(
            self._fill_stats(result, "ppsfp-bridging", since)
        )


def _resolve_words(
    fault: BridgingFault, value_a: int, value_b: int, mask: int
) -> Tuple[int, int]:
    """Word-parallel wired-logic resolution of a bridge."""
    if fault.kind == "and":
        both = value_a & value_b
        return both, both
    if fault.kind == "or":
        both = value_a | value_b
        return (both & mask, both & mask)
    if fault.kind == "dom_a":
        return value_a, value_a
    if fault.kind == "dom_b":
        return value_b, value_b
    raise ValueError(f"unknown bridging kind {fault.kind!r}")
