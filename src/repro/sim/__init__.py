"""Simulation engines: 4-valued event-driven, bit-parallel, fault simulation."""

from .chaos import ChaosPlan, HostChaosInjection, HostChaosPlan
from .dispatch import (
    BACKEND_NAMES,
    FaultSimBackend,
    PoolBackend,
    PpsfpBackend,
    SerialBackend,
    get_backend,
    merge_results,
    partition_faults,
    validate_pool_args,
)
from .faultsim import FaultSimResult, FaultSimulator
from .journal import CampaignJournal, CampaignKey, JournalMismatchError
from .store import (
    Lease,
    ShardStore,
    StoreCorruptionError,
    StoreMismatchError,
    read_store_progress,
    validate_store_args,
)
from .supervisor import SupervisedPoolBackend, SupervisorConfig
from .goodcache import DEFAULT_CACHE, GoodMachineCache
from .logicsim import LogicSimulator
from .seqfaultsim import LANES_PER_WORD, SequentialFaultSimulator
from .parallel import (
    WORD_WIDTH,
    WORD_WIDTHS,
    ParallelSimulator,
    pack_patterns,
    unpack_word,
)
from .view import CombinationalView

__all__ = [
    "LogicSimulator",
    "ParallelSimulator",
    "FaultSimulator",
    "FaultSimResult",
    "FaultSimBackend",
    "SerialBackend",
    "PpsfpBackend",
    "PoolBackend",
    "SupervisedPoolBackend",
    "SupervisorConfig",
    "ChaosPlan",
    "HostChaosInjection",
    "HostChaosPlan",
    "CampaignJournal",
    "CampaignKey",
    "JournalMismatchError",
    "Lease",
    "ShardStore",
    "StoreCorruptionError",
    "StoreMismatchError",
    "read_store_progress",
    "validate_store_args",
    "BACKEND_NAMES",
    "get_backend",
    "merge_results",
    "partition_faults",
    "validate_pool_args",
    "SequentialFaultSimulator",
    "LANES_PER_WORD",
    "CombinationalView",
    "WORD_WIDTH",
    "WORD_WIDTHS",
    "GoodMachineCache",
    "DEFAULT_CACHE",
    "pack_patterns",
    "unpack_word",
]
