"""Event-driven 4-valued logic simulation.

Two entry points:

* :meth:`LogicSimulator.evaluate` — one combinational evaluation of the
  full-scan view (pattern in, response out), with X propagation.
* :meth:`LogicSimulator.run_sequence` — cycle-accurate sequential simulation
  (flops clocked every cycle), used for functional verification of the
  generated datapath blocks and for scan-chain shift simulation.

Values are the 4-valued constants of :mod:`repro.circuit.values`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuit.gates import GateType, evaluate
from ..circuit.netlist import Netlist
from ..circuit.values import ONE, X, ZERO
from .view import CombinationalView


class LogicSimulator:
    """4-valued simulator over a fixed netlist."""

    def __init__(self, netlist: Netlist):
        netlist.finalize()
        self.netlist = netlist
        self.view = CombinationalView(netlist)

    # ------------------------------------------------------------------
    # Combinational (full-scan view)
    # ------------------------------------------------------------------

    def evaluate(self, pattern: Sequence[int]) -> List[int]:
        """Evaluate all gates for one test pattern; returns values by gate.

        ``pattern`` assigns PIs then flop outputs, in
        :class:`CombinationalView` order.  Unassigned positions may use X.
        """
        if len(pattern) != self.view.num_inputs:
            raise ValueError(
                f"pattern length {len(pattern)} != {self.view.num_inputs} "
                "(PIs + flops)"
            )
        gates = self.netlist.gates
        values: List[int] = [X] * len(gates)
        for position, gate_index in enumerate(self.view.input_gates):
            values[gate_index] = pattern[position]
        for gate_index in self.netlist.topo_order:
            gate = gates[gate_index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                continue
            values[gate_index] = evaluate(
                gate.type, [values[driver] for driver in gate.fanin]
            )
        return values

    def response(self, pattern: Sequence[int]) -> List[int]:
        """Test response (POs then flop D values) for one pattern."""
        return self.view.read_outputs(self.evaluate(pattern))

    # ------------------------------------------------------------------
    # Sequential
    # ------------------------------------------------------------------

    def initial_state(self, value: int = X) -> List[int]:
        """A flop-state vector, one entry per flop in netlist order."""
        return [value] * len(self.netlist.flops)

    def step(
        self,
        inputs: Sequence[int],
        state: Sequence[int],
        scan_shift: bool = False,
    ) -> Dict[str, List[int]]:
        """One clock cycle: returns ``{"outputs": ..., "state": ...}``.

        ``inputs`` covers primary inputs only.  With ``scan_shift`` true,
        ``SDFF`` flops capture their scan-in pin (fanin 1) instead of the
        functional D pin; plain ``DFF`` flops always capture D.
        """
        n_pi = len(self.netlist.inputs)
        if len(inputs) != n_pi:
            raise ValueError(f"expected {n_pi} primary inputs, got {len(inputs)}")
        if len(state) != len(self.netlist.flops):
            raise ValueError(
                f"expected {len(self.netlist.flops)} state values, got {len(state)}"
            )
        values = self.evaluate(list(inputs) + list(state))
        outputs = [values[self.netlist.gates[po].fanin[0]] for po in self.netlist.outputs]
        next_state: List[int] = []
        for flop_index in self.netlist.flops:
            gate = self.netlist.gates[flop_index]
            if scan_shift and gate.type == GateType.SDFF:
                next_state.append(values[gate.fanin[1]])
            else:
                next_state.append(values[gate.fanin[0]])
        return {"outputs": outputs, "state": next_state}

    def run_sequence(
        self,
        input_vectors: Sequence[Sequence[int]],
        initial_state: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Clock the circuit through ``input_vectors``; return per-cycle POs."""
        state = list(initial_state) if initial_state is not None else self.initial_state(ZERO)
        trace: List[List[int]] = []
        for vector in input_vectors:
            result = self.step(vector, state)
            trace.append(result["outputs"])
            state = result["state"]
        return trace

    def run_to_ints(
        self,
        input_vectors: Sequence[Sequence[int]],
        initial_state: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Like :meth:`run_sequence` but packs each PO vector into an int.

        Raises if any observed output is X — intended for verifying
        fully-specified datapath behaviour (e.g. MAC accumulation).
        """
        packed: List[int] = []
        for outputs in self.run_sequence(input_vectors, initial_state):
            word = 0
            for position, value in enumerate(outputs):
                if value not in (ZERO, ONE):
                    raise ValueError(f"output bit {position} is unknown")
                word |= value << position
            packed.append(word)
        return packed
