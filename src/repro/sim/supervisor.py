"""Supervised multiprocess fault simulation: crash recovery, timeouts,
poisoned-partition fallback, and checkpoint/resume.

:class:`repro.sim.dispatch.PoolBackend` is fast but brittle: one worker
OOM-killed, crashed, or wedged takes the whole campaign with it, and an
hours-long accelerator-scale run restarts from zero.  The tutorial's own
thesis — AI chips must keep working when parts fail — applies to the
test infrastructure too.  :class:`SupervisedPoolBackend` runs the same
deterministic shards (same seeded partitioning, same min-merge, so a
clean supervised run is bit-identical to ``pool`` and ``ppsfp``) under a
supervisor that assumes workers *will* fail:

* **one process per partition** — failure isolation is the unit of work;
  a dead or wedged worker loses exactly one shard, never the pool;
* **per-partition wall-clock deadline** — a hung worker is killed at
  ``timeout_s`` and its shard requeued;
* **bounded retry with exponential backoff** — crashes, kills, injected
  exceptions and validation failures requeue the shard up to
  ``max_retries`` times;
* **result validation** — every partial result must cover exactly its
  shard with in-range first-detection indices, so a worker returning
  structurally corrupt data is treated as a failure, not merged;
* **poisoned-partition fallback** — a shard that exhausts its pool
  retries is re-run inline in the parent (no fork, no pipe — the
  failure domain shrinks to the kernel itself);
* **graceful degradation** — a shard that fails even inline is recorded
  in ``stats["failed_partitions"]`` and its faults stay conservatively
  undetected: the merged result is a *coverage lower bound*
  (``stats["coverage_lower_bound"]``) instead of a traceback;
* **journaling** — with a :class:`repro.sim.journal.CampaignJournal`
  attached, every completed shard is durably appended, and a later run
  of the same campaign skips journaled shards entirely
  (``stats["journal_skipped"]``) — a killed campaign resumes
  bit-identically.

The failure modes are exercised deterministically by
:mod:`repro.sim.chaos`; ``tests/test_supervisor.py`` asserts that the
recovered merge is bit-identical to single-process PPSFP under every
injected schedule.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.model import StuckAtFault
from ..obs import MetricRegistry
from ..obs.events import (
    CHAOS,
    CRASH,
    HEARTBEAT,
    HOST_CHAOS,
    INLINE_FALLBACK,
    INVALID,
    JOURNAL_SKIP,
    PARTITION_BEGIN,
    PARTITION_END,
    RETRY,
    TIMEOUT,
    EventLog,
)
from . import shm
from .chaos import (
    HOST_KILL_EXIT_CODE,
    KILL,
    PARTITION,
    STALL,
    ChaosPlan,
    HostChaosPlan,
)
from .dispatch import (
    FaultSimBackend,
    default_partition_count,
    merge_results,
    partition_faults,
    partition_metrics,
    validate_pool_args,
)
from .faultsim import FaultSimResult, FaultSimulator, _unique
from .journal import CampaignJournal, CampaignKey
from .store import Lease, ShardStore


@dataclass
class SupervisorConfig:
    """Tunables for the supervised pool.

    ``timeout_s`` is the per-partition wall-clock deadline (``None``
    disables hang detection — crashes are still recovered).
    ``max_retries`` counts *pool* retries per shard; after those, the
    shard runs inline in the parent when ``inline_fallback`` is set.
    ``backoff_s`` seeds exponential backoff between retries of one shard
    (attempt ``k`` waits ``backoff_s * 2**(k-1)``).
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    inline_fallback: bool = True
    poll_interval_s: float = 0.01

    def validate(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )


def validate_partial(
    partial: FaultSimResult,
    shard: Sequence[StuckAtFault],
    n_patterns: int,
) -> Optional[str]:
    """Structural validity of a worker's partial result, or a reason.

    The contract: the partial grades exactly its shard — every shard
    fault is either detected (with a first-detection index inside the
    pattern set) or listed undetected, nothing extra, nothing missing.
    A crashed-and-restarted or byte-corrupted worker cannot satisfy this
    by accident, so validation turns silent corruption into a retry.
    """
    shard_set = set(shard)
    detected = set(partial.detected)
    undetected = set(partial.undetected)
    if partial.total_faults != len(shard_set):
        return f"total_faults {partial.total_faults} != shard size {len(shard_set)}"
    if not detected <= shard_set:
        return "detected faults outside the shard"
    if not undetected <= shard_set:
        return "undetected faults outside the shard"
    if detected & undetected:
        return "faults both detected and undetected"
    if detected | undetected != shard_set:
        return "shard universe not fully accounted for"
    for index in partial.detected.values():
        if not isinstance(index, int) or not 0 <= index < max(1, n_patterns):
            return f"first-detection index {index!r} out of range"
    return None


def _supervised_worker(conn, index, attempt, shard, drop, netlist,
                       arena_spec, meta, chaos, good_chunks=None) -> None:
    """Worker entry: grade one shard, send (status, payload), exit.

    Runs in its own process; the netlist arrives by copy-on-write under
    ``fork`` (pickled under ``spawn``), and the pattern matrix plus the
    shared good-machine response are mapped read-only from the campaign
    arena — one shared segment instead of one pickle per attempt.  Any
    exception — including injected chaos — is reported as an ``error``
    message so the supervisor need not wait for a timeout to learn about
    it.  Workers never unlink the arena; the parent owns it.

    Store-mode campaigns pass ``good_chunks`` directly (inherited by
    ``fork`` copy-on-write) and no arena: a host-level ``kill`` injection
    terminates the parent with ``os._exit``, which would leak any shared
    segment the parent owned — with no arena there is nothing to leak.
    """
    status, payload = "error", "worker exited without result"
    n_patterns = meta["n_patterns"]
    try:
        log = EventLog()
        log.emit(
            PARTITION_BEGIN, "partition",
            partition=index, attempt=attempt, faults=len(shard),
        )
        if chaos is not None:
            chaos.execute_pre(index, attempt)
        if arena_spec is not None:
            # The arena (and with it every zero-copy good-block view) must
            # outlive the simulation; the process exit reclaims the mapping.
            _, good_chunks = shm.attach_campaign(arena_spec, meta)
        simulator = FaultSimulator(
            netlist,
            word_width=meta["word_width"],
            cache=None,
            kernel=meta["kernel"],
        )
        partial = simulator._simulate_ppsfp(
            None, shard, drop, good_chunks=good_chunks, n_patterns=n_patterns
        )
        if chaos is not None:
            partial = chaos.corrupt_result(index, attempt, partial, n_patterns)
        # After chaos corruption, so the registry describes the partial as
        # actually shipped (a rejected partial's metrics die with it).
        partial.stats["metrics"] = partition_metrics(partial)
        log.emit(
            PARTITION_END, "partition",
            partition=index, attempt=attempt, detected=len(partial.detected),
        )
        partial.stats["worker_events"] = log.to_payload()
        status, payload = "ok", partial
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        status, payload = "error", f"{type(exc).__name__}: {exc}"
    try:
        conn.send((status, payload))
    except Exception:
        pass  # parent already gone or pipe broken; exit code tells the story
    finally:
        conn.close()


@dataclass
class _Slot:
    """One in-flight worker process."""

    index: int
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: object
    deadline: Optional[float]


class SupervisedPoolBackend(FaultSimBackend):
    """Fault-tolerant multiprocess PPSFP over deterministic partitions.

    Drop-in alternative to :class:`~repro.sim.dispatch.PoolBackend`
    (same ``jobs``/``seed``/``partitions`` semantics, bit-identical
    results on a clean run) that survives worker crashes, hangs and
    corrupt results, degrades gracefully instead of dying, and resumes
    from a campaign journal.
    """

    name = "supervised"

    def __init__(
        self,
        jobs: Optional[int] = None,
        seed: int = 0,
        partitions: Optional[int] = None,
        config: Optional[SupervisorConfig] = None,
        chaos: Optional[ChaosPlan] = None,
        journal: Optional[CampaignJournal] = None,
        store: Optional[ShardStore] = None,
        host_chaos: Optional[HostChaosPlan] = None,
    ):
        validate_pool_args(jobs=jobs, seed=seed, partitions=partitions)
        if host_chaos is not None and store is None:
            raise ValueError(
                "host-level chaos targets runners of a shared store; "
                "pass store= as well (or use worker-level chaos=)"
            )
        self.jobs = jobs
        self.seed = seed
        self.partitions = partitions
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.chaos = chaos
        self.journal = journal
        self.store = store
        self.host_chaos = host_chaos

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------

    def run(self, simulator, patterns, faults, drop=True):
        if self.store is not None:
            return self._run_store(simulator, patterns, faults, drop)
        start_time = time.perf_counter()
        universe = _unique(faults)
        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        jobs = max(1, jobs)
        n_partitions = (
            self.partitions
            if self.partitions is not None
            else default_partition_count(len(universe))
        )
        shards = partition_faults(universe, n_partitions, self.seed)

        good_start = time.perf_counter()
        parallel = simulator.parallel
        passes0 = parallel.evaluations
        # The campaign arena holds the packed pattern matrix and the
        # good-machine response in one shared segment; the parent owns it
        # and unlinks it in the ``finally`` below on every exit path —
        # normal completion, poisoned shards, and KeyboardInterrupt.
        arena, meta = shm.pack_campaign(simulator, patterns)
        good_chunks = shm.good_chunks_from(arena, meta)
        good_words = (parallel.evaluations - passes0) * parallel.num_scheduled
        good_seconds = time.perf_counter() - good_start

        counters = {
            "retries": 0,
            "worker_crashes": 0,
            "timeouts": 0,
            "invalid_results": 0,
            "inline_fallbacks": 0,
        }
        sources: Dict[int, str] = {}
        attempts_used: Dict[int, int] = {}
        results: Dict[int, FaultSimResult] = {}
        failed: List[Dict[str, object]] = []
        metrics_lost: Dict[int, int] = {}
        # The supervisor's own telemetry: retry/kill/chaos instants plus
        # campaign heartbeats, stitched with the workers' shipped logs.
        events = EventLog()

        try:
            journal_skipped = 0
            if self.journal is not None and shards:
                key = CampaignKey.build(
                    simulator.netlist, patterns, universe, self.seed, len(shards), drop
                )
                for index, partial in self.journal.begin(key).items():
                    if index >= len(shards):
                        continue
                    if validate_partial(partial, shards[index], len(patterns)) is None:
                        results[index] = partial
                        sources[index] = "journal"
                        journal_skipped += 1
                        events.emit(JOURNAL_SKIP, "journal_skip", partition=index)

            pending = [
                (index, 0, 0.0)  # (partition, attempt, eligible-at monotonic time)
                for index in range(len(shards))
                if index not in results
            ]
            if pending:
                self._supervise(
                    simulator, arena, meta, good_chunks, shards, drop, jobs,
                    pending, results, failed, counters, sources, attempts_used,
                    events, metrics_lost,
                )
        finally:
            arena.destroy()

        result = merge_results(
            [results[i] for i in sorted(results)], universe, len(patterns), drop
        )
        self._fill_stats(
            result, results, failed, shards, jobs, good_seconds, good_words,
            start_time, counters, sources, attempts_used, journal_skipped,
            simulator, events, metrics_lost,
        )
        return result

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------

    def _supervise(
        self, simulator, arena, meta, good_chunks, shards, drop, jobs, pending,
        results, failed, counters, sources, attempts_used, events, metrics_lost,
    ) -> None:
        config = self.config
        running: List[_Slot] = []
        n_patterns = meta["n_patterns"]
        faults_total = sum(len(shard) for shard in shards)

        def record(index: int, partial: FaultSimResult, source: str, attempt: int):
            results[index] = partial
            sources[index] = source
            attempts_used[index] = attempt + 1
            if self.journal is not None:
                self.journal.record(index, partial)
            # Campaign heartbeat on every shard flush: the live progress
            # gauges `repro obs tail` reads from the journal and the
            # trace exporter renders as a counter series.
            graded = sum(r.total_faults for r in results.values())
            events.emit(
                HEARTBEAT, "progress",
                partition=index,
                faults_graded=graded,
                faults_total=faults_total,
                partitions_done=len(results),
                partitions_total=len(shards),
            )
            if self.journal is not None:
                self.journal.heartbeat(
                    partition=index,
                    source=source,
                    faults_graded=graded,
                    faults_total=faults_total,
                    partitions_done=len(results),
                    partitions_total=len(shards),
                )

        def fail(slot: _Slot, reason: str) -> None:
            attempt = slot.attempt
            if attempt < config.max_retries:
                counters["retries"] += 1
                events.emit(
                    RETRY, "retry",
                    partition=slot.index, attempt=attempt, reason=reason[:200],
                )
                eligible = time.monotonic() + config.backoff_s * (2 ** attempt)
                pending.append((slot.index, attempt + 1, eligible))
                return
            self._finish_poisoned(
                simulator, n_patterns, good_chunks, shards, drop, slot.index,
                attempt, reason, record, failed, counters, events,
            )

        try:
            while pending or running:
                now = time.monotonic()
                # Launch eligible shards into free slots, lowest index first.
                pending.sort(key=lambda item: (item[2], item[0]))
                while len(running) < jobs and pending and pending[0][2] <= now:
                    index, attempt, _ = pending.pop(0)
                    if self.chaos is not None:
                        mode = self.chaos.mode_for(index, attempt)
                        if mode is not None:
                            # The parent knows the schedule, so the
                            # injection lands on the timeline even when
                            # the worker dies before reporting anything.
                            events.emit(
                                CHAOS, f"chaos:{mode}",
                                partition=index, attempt=attempt, mode=mode,
                            )
                    running.append(
                        self._spawn(
                            simulator, arena, meta, shards[index],
                            drop, index, attempt,
                        )
                    )
                progressed = False
                for slot in list(running):
                    outcome = self._poll_slot(slot, now)
                    if outcome is None:
                        continue
                    progressed = True
                    running.remove(slot)
                    status, payload = outcome
                    if status == "ok":
                        reason = validate_partial(
                            payload, shards[slot.index], n_patterns
                        )
                        if reason is None:
                            record(slot.index, payload, "worker", slot.attempt)
                        else:
                            counters["invalid_results"] += 1
                            metrics_lost[slot.index] = (
                                metrics_lost.get(slot.index, 0) + 1
                            )
                            events.emit(
                                INVALID, "invalid_result",
                                partition=slot.index, attempt=slot.attempt,
                                reason=reason,
                            )
                            fail(slot, f"invalid result: {reason}")
                    else:
                        # The attempt did real work whose metrics died
                        # with the worker: note the loss so merged totals
                        # can be reported as a stated lower bound.
                        metrics_lost[slot.index] = (
                            metrics_lost.get(slot.index, 0) + 1
                        )
                        if status == "timeout":
                            counters["timeouts"] += 1
                            events.emit(
                                TIMEOUT, "timeout_kill",
                                partition=slot.index, attempt=slot.attempt,
                                deadline_s=self.config.timeout_s,
                            )
                        else:
                            counters["worker_crashes"] += 1
                            events.emit(
                                CRASH, "worker_crash",
                                partition=slot.index, attempt=slot.attempt,
                                reason=str(payload)[:200],
                            )
                        fail(slot, payload)
                if not progressed:
                    time.sleep(config.poll_interval_s)
        except BaseException:
            # KeyboardInterrupt or anything else: reap every child and
            # leave the journal durable before propagating.
            self._terminate(running)
            if self.journal is not None:
                self.journal.flush()
            raise

    def _spawn(self, simulator, arena, meta, shard, drop, index, attempt,
               good_chunks=None):
        """Start one worker process for one shard attempt.

        ``arena`` may be ``None`` (store mode), in which case the caller
        supplies ``good_chunks`` directly — free under ``fork`` (COW),
        pickled through the process args on platforms without it.
        """
        context = self._context()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_supervised_worker,
            args=(
                child_conn, index, attempt, shard, drop, simulator.netlist,
                arena.spec if arena is not None else None, meta, self.chaos,
                good_chunks,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            None
            if self.config.timeout_s is None
            else time.monotonic() + self.config.timeout_s
        )
        return _Slot(index, attempt, process, parent_conn, deadline)

    def _poll_slot(self, slot: _Slot, now: float):
        """One observation of a running worker.

        Returns ``None`` (still running), ``("ok", partial)``,
        ``("timeout", reason)``, or ``("crash"/"error", reason)``.
        """
        if slot.conn.poll():
            try:
                status, payload = slot.conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            self._reap(slot)
            if status == "ok":
                return ("ok", payload)
            if status == "error":
                return ("error", f"worker error: {payload}")
            return ("crash", "worker closed pipe without a result")
        if not slot.process.is_alive():
            self._reap(slot)
            return (
                "crash",
                f"worker died (exit code {slot.process.exitcode})",
            )
        if slot.deadline is not None and now > slot.deadline:
            self._reap(slot, kill=True)
            return (
                "timeout",
                f"partition exceeded {self.config.timeout_s}s deadline",
            )
        return None

    def _finish_poisoned(
        self, simulator, n_patterns, good_chunks, shards, drop, index,
        attempt, reason, record, failed, counters, events,
    ) -> None:
        """Pool retries exhausted: inline fallback, else mark failed."""
        shard = shards[index]
        if self.config.inline_fallback:
            counters["inline_fallbacks"] += 1
            inline_attempt = attempt + 1
            events.emit(
                INLINE_FALLBACK, "inline_fallback",
                partition=index, attempt=inline_attempt, reason=reason[:200],
            )
            try:
                if self.chaos is not None:
                    self.chaos.execute_pre(index, inline_attempt, inline=True)
                partial = simulator._simulate_ppsfp(
                    None, shard, drop,
                    good_chunks=good_chunks, n_patterns=n_patterns,
                )
                if self.chaos is not None:
                    partial = self.chaos.corrupt_result(
                        index, inline_attempt, partial, n_patterns
                    )
                invalid = validate_partial(partial, shard, n_patterns)
                if invalid is None:
                    partial.stats["metrics"] = partition_metrics(partial)
                    record(index, partial, "inline", inline_attempt)
                    return
                reason = f"inline fallback invalid result: {invalid}"
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                reason = f"inline fallback failed: {type(exc).__name__}: {exc}"
            attempt = inline_attempt
        failed.append(
            {
                "partition": index,
                "faults": len(shard),
                "attempts": attempt + 1,
                "reason": reason,
            }
        )

    # ------------------------------------------------------------------
    # Shared-store mode (multi-runner campaigns)
    # ------------------------------------------------------------------

    @staticmethod
    def _claim_order(n_shards: int, runner_id: str) -> List[int]:
        """Shard visit order for claims, staggered per runner id.

        N runners launched together would otherwise all race shard 0,
        lose N-1 claims, race shard 1, and so on.  A deterministic
        per-runner offset (``hash()`` is salted per process, so a byte
        sum instead) spreads the fleet across the shard space while
        keeping each runner's order reproducible.
        """
        if n_shards == 0:
            return []
        offset = sum(runner_id.encode()) % n_shards
        return [(offset + i) % n_shards for i in range(n_shards)]

    def _run_store(self, simulator, patterns, faults, drop):
        """Cooperatively execute one campaign over a shared shard store.

        The single-runner path above owns its shards outright; here every
        shard is *claimed* from the store under a heartbeat-renewed lease,
        so any number of independently launched runner processes share the
        campaign and steal from dead peers.  Three deliberate differences,
        each load-bearing:

        * no /dev/shm arena — the good-machine response reaches workers by
          ``fork`` copy-on-write, because a host-level ``kill`` injection
          exits with ``os._exit`` and would leak any segment this parent
          owned;
        * grading runs in child processes, so this supervision loop stays
          free to renew leases however long a shard takes;
        * the final merge reads *only* the store's published result files —
          including for shards graded here — so every runner's merged
          result is bit-identical to every other's (and to a clean
          single-runner run) by construction.
        """
        start_time = time.perf_counter()
        config = self.config
        store = self.store
        universe = _unique(faults)
        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        jobs = max(1, jobs)
        n_partitions = (
            self.partitions
            if self.partitions is not None
            else default_partition_count(len(universe))
        )
        shards = partition_faults(universe, n_partitions, self.seed)
        n_patterns = len(patterns)
        key = CampaignKey.build(
            simulator.netlist, patterns, universe, self.seed, len(shards), drop
        )
        store.initialize(key, len(shards))
        events = store.events  # one timeline: lease events + supervision
        injection = (
            self.host_chaos.for_runner(store.runner_id)
            if self.host_chaos is not None
            else None
        )
        meta = {
            "n_patterns": n_patterns,
            "word_width": simulator.word_width,
            "kernel": simulator.kernel,
        }

        counters = {
            "retries": 0,
            "worker_crashes": 0,
            "timeouts": 0,
            "invalid_results": 0,
            "inline_fallbacks": 0,
        }
        sources: Dict[int, str] = {}
        attempts_used: Dict[int, int] = {}
        metrics_lost: Dict[int, int] = {}
        failed: List[Dict[str, object]] = []
        leases: Dict[int, Lease] = {}
        abandoned: set = set()
        pending: List[Tuple[int, int, float]] = []
        running: List[_Slot] = []
        publish_queue: Dict[int, FaultSimResult] = {}
        faults_total = sum(len(shard) for shard in shards)
        state = {
            "published": 0,       # store.publish calls that landed
            "wins": 0,            # ... that won first-write
            "graded_faults": 0,   # faults graded by this runner
            "chaos_fired": False,
            "window_mode": None,  # live stall/partition window
            "window_until": 0.0,
        }

        # The good response is only computed when this runner actually
        # grades something: a runner that finds the campaign already
        # finished by peers pays nothing but the merge.
        good_state: Dict[str, object] = {}

        def good_chunks():
            if "chunks" not in good_state:
                t0 = time.perf_counter()
                parallel = simulator.parallel
                passes0 = parallel.evaluations
                good_state["chunks"] = simulator.good_response(patterns)
                good_state["words"] = (
                    (parallel.evaluations - passes0) * parallel.num_scheduled
                )
                good_state["seconds"] = time.perf_counter() - t0
            return good_state["chunks"]

        def store_reachable(now: float) -> bool:
            return not (
                state["window_mode"] == PARTITION and now < state["window_until"]
            )

        def renewals_allowed(now: float) -> bool:
            return not (
                state["window_mode"] in (STALL, PARTITION)
                and now < state["window_until"]
            )

        def maybe_fire_host_chaos() -> None:
            if injection is None or state["chaos_fired"]:
                return
            if state["published"] < injection.after_publishes:
                return
            state["chaos_fired"] = True
            events.emit(
                HOST_CHAOS, f"host_chaos:{injection.mode}",
                runner=store.runner_id, mode=injection.mode,
                after_publishes=injection.after_publishes,
                duration_s=injection.duration_s,
            )
            if injection.mode == KILL:
                # A host death: no lease release, no cleanup — peers must
                # steal the expired leases.  Flush telemetry only, so the
                # postmortem shows what this runner was holding.
                store.write_events()
                if self.journal is not None:
                    self.journal.flush()
                os._exit(HOST_KILL_EXIT_CODE)
            state["window_mode"] = injection.mode
            state["window_until"] = (
                float("inf")
                if injection.duration_s == 0
                else time.monotonic() + injection.duration_s
            )

        def publish(index: int, partial: FaultSimResult) -> None:
            if store.publish(index, partial):
                state["wins"] += 1
            state["published"] += 1
            lease = leases.pop(index, None)
            if lease is not None:
                store.release(lease)
            done = store.done_indices()
            events.emit(
                HEARTBEAT, "progress",
                partition=index,
                faults_graded=state["graded_faults"],
                faults_total=faults_total,
                partitions_done=len(done),
                partitions_total=len(shards),
            )
            if self.journal is not None:
                self.journal.heartbeat(
                    partition=index,
                    source=sources.get(index, "worker"),
                    faults_graded=state["graded_faults"],
                    faults_total=faults_total,
                    partitions_done=len(done),
                    partitions_total=len(shards),
                )

        def record(index: int, partial: FaultSimResult, source: str,
                   attempt: int) -> None:
            sources[index] = source
            attempts_used[index] = attempt + 1
            state["graded_faults"] += partial.total_faults
            worker_payload = partial.stats.get("worker_events")
            if worker_payload:
                # Stitch the worker's timeline here: the serialized store
                # record keeps only the deterministic stats, so this is
                # the only place the per-attempt events survive.
                events.ingest(worker_payload)
            if self.journal is not None:
                self.journal.record(index, partial)
            if not store_reachable(time.monotonic()):
                publish_queue[index] = partial  # lands late, converges
                return
            publish(index, partial)

        def fail(slot: _Slot, reason: str) -> None:
            attempt = slot.attempt
            if attempt < config.max_retries:
                counters["retries"] += 1
                events.emit(
                    RETRY, "retry",
                    partition=slot.index, attempt=attempt, reason=reason[:200],
                )
                eligible = time.monotonic() + config.backoff_s * (2 ** attempt)
                pending.append((slot.index, attempt + 1, eligible))
                return
            n_failed = len(failed)
            self._finish_poisoned(
                simulator, n_patterns, good_chunks(), shards, drop, slot.index,
                attempt, reason, record, failed, counters, events,
            )
            if len(failed) > n_failed:
                # Locally poisoned: hand the shard back so a peer (with a
                # healthier host) can try it; only if nobody can does the
                # campaign degrade to a coverage lower bound.
                lease = leases.pop(slot.index, None)
                if lease is not None:
                    store.release(lease)
                abandoned.add(slot.index)

        journal_skipped = 0
        if self.journal is not None and shards:
            # Resume: journaled shards of this same campaign are published
            # straight to the store — no re-grading; first-write-wins makes
            # the replay idempotent against peers that got there first.
            for index, partial in self.journal.begin(key).items():
                if index >= len(shards) or store.is_done(index):
                    continue
                if validate_partial(partial, shards[index], n_patterns) is None:
                    sources[index] = "journal"
                    journal_skipped += 1
                    events.emit(JOURNAL_SKIP, "journal_skip", partition=index)
                    publish(index, partial)

        try:
            while True:
                now = time.monotonic()
                if state["window_mode"] is not None and now >= state["window_until"]:
                    state["window_mode"] = None
                maybe_fire_host_chaos()
                now = time.monotonic()

                # Renew leases we hold before peers can deem them expired.
                if leases and renewals_allowed(now):
                    for index, lease in list(leases.items()):
                        if store.needs_renewal(lease):
                            renewed = store.renew(lease)
                            if renewed is None:
                                # Stolen (we renewed too late).  Keep
                                # grading: the duplicate publish converges
                                # first-write-wins, and aborting now would
                                # waste the work if the stealer dies too.
                                leases.pop(index, None)
                            else:
                                leases[index] = renewed

                for slot in list(running):
                    outcome = self._poll_slot(slot, now)
                    if outcome is None:
                        continue
                    running.remove(slot)
                    status, payload = outcome
                    if status == "ok":
                        reason = validate_partial(
                            payload, shards[slot.index], n_patterns
                        )
                        if reason is None:
                            record(slot.index, payload, "worker", slot.attempt)
                        else:
                            counters["invalid_results"] += 1
                            metrics_lost[slot.index] = (
                                metrics_lost.get(slot.index, 0) + 1
                            )
                            events.emit(
                                INVALID, "invalid_result",
                                partition=slot.index, attempt=slot.attempt,
                                reason=reason,
                            )
                            fail(slot, f"invalid result: {reason}")
                    else:
                        metrics_lost[slot.index] = (
                            metrics_lost.get(slot.index, 0) + 1
                        )
                        if status == "timeout":
                            counters["timeouts"] += 1
                            events.emit(
                                TIMEOUT, "timeout_kill",
                                partition=slot.index, attempt=slot.attempt,
                                deadline_s=self.config.timeout_s,
                            )
                        else:
                            counters["worker_crashes"] += 1
                            events.emit(
                                CRASH, "worker_crash",
                                partition=slot.index, attempt=slot.attempt,
                                reason=str(payload)[:200],
                            )
                        fail(slot, payload)

                now = time.monotonic()
                if publish_queue and store_reachable(now):
                    # The partition window healed: queued results land
                    # late and converge idempotently against any peer
                    # that graded the same shards meanwhile.
                    for index in sorted(publish_queue):
                        publish(index, publish_queue.pop(index))

                # Claim work from the store (stealing expired leases as a
                # side effect), at most one shard per free slot.
                if store_reachable(now):
                    busy = {slot.index for slot in running}
                    busy.update(item[0] for item in pending)
                    if len(busy) < jobs:
                        done = store.done_indices()
                        for index in self._claim_order(
                            len(shards), store.runner_id
                        ):
                            if len(busy) >= jobs:
                                break
                            if (
                                index in done
                                or index in busy
                                or index in abandoned
                                or index in leases
                                or index in publish_queue
                            ):
                                continue
                            lease = store.try_claim(index)
                            if lease is None:
                                continue  # done, live peer, or lost race
                            leases[index] = lease
                            pending.append((index, 0, 0.0))
                            busy.add(index)

                pending.sort(key=lambda item: (item[2], item[0]))
                while len(running) < jobs and pending and pending[0][2] <= now:
                    index, attempt, _ = pending.pop(0)
                    if store_reachable(now) and store.is_done(index):
                        # A peer finished it between claim and spawn
                        # (stall/steal overlap): don't grade it again.
                        lease = leases.pop(index, None)
                        if lease is not None:
                            store.release(lease)
                        continue
                    if self.chaos is not None:
                        mode = self.chaos.mode_for(index, attempt)
                        if mode is not None:
                            events.emit(
                                CHAOS, f"chaos:{mode}",
                                partition=index, attempt=attempt, mode=mode,
                            )
                    running.append(
                        self._spawn(
                            simulator, None, meta, shards[index], drop,
                            index, attempt, good_chunks=good_chunks(),
                        )
                    )

                if (
                    not running and not pending and not publish_queue
                    and store_reachable(time.monotonic())
                ):
                    done = store.done_indices()
                    if len(done) >= len(shards):
                        break  # campaign complete (by us, peers, or both)
                    un_done = [i for i in range(len(shards)) if i not in done]
                    if un_done and all(i in abandoned for i in un_done):
                        # Every remaining shard is poisoned *here*; only
                        # degrade once no live peer still holds any of
                        # them — a peer might yet publish.
                        held = store.leases()
                        wall = store.clock()
                        live_peer = any(
                            index in held
                            and held[index].deadline > wall
                            and held[index].runner != store.runner_id
                            for index in un_done
                        )
                        if not live_peer:
                            break  # graceful degradation: lower bound
                time.sleep(config.poll_interval_s)
        except BaseException:
            # KeyboardInterrupt or anything else: reap children, give the
            # held leases back immediately (peers should not wait out the
            # deadline for a runner that exited cleanly), flush telemetry.
            self._terminate(running)
            for lease in leases.values():
                store.release(lease)
            leases.clear()
            if self.journal is not None:
                self.journal.flush()
            store.write_events()
            raise

        self._terminate(running)
        for lease in leases.values():
            store.release(lease)
        leases.clear()
        swept = store.sweep()
        store.write_events()

        # Merge exclusively from the store's published bytes — shards this
        # runner graded included — so all runners converge bit-identically.
        results = store.load_results()
        for index in results:
            sources.setdefault(index, "peer")
        result = merge_results(
            [results[i] for i in sorted(results)], universe, n_patterns, drop
        )
        counters["steals"] = store.steals
        counters["publish_conflicts"] = store.publish_conflicts
        self._fill_stats(
            result, results, failed, shards, jobs,
            good_state.get("seconds", 0.0), good_state.get("words", 0),
            start_time, counters, sources, attempts_used, journal_skipped,
            simulator, events, metrics_lost,
        )
        graded_here = sum(
            1 for source in sources.values() if source != "peer"
        )
        result.stats["store"] = {
            "path": store.root,
            "runner_id": store.runner_id,
            "lease_s": store.lease_s,
            "n_shards": len(shards),
            "shards_graded_here": graded_here,
            "published": state["wins"],
            "publish_conflicts": store.publish_conflicts,
            "steals": store.steals,
            "leases_swept": swept,
            "finished_by_peers": (
                state["wins"] == 0 and len(results) >= len(shards)
            ),
        }
        return result

    # ------------------------------------------------------------------
    # Process plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _context():
        # fork shares the parent's netlist for free (the patterns and good
        # response ride the shared-memory arena either way); platforms
        # without fork pickle the netlist through the Process args.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    @staticmethod
    def _reap(slot: _Slot, kill: bool = False) -> None:
        if kill and slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=5.0)
        if slot.process.is_alive():  # pragma: no cover - stuck in kernel
            slot.process.terminate()
            slot.process.join(timeout=1.0)
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _terminate(self, running: List[_Slot]) -> None:
        for slot in running:
            self._reap(slot, kill=True)
        running.clear()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def _fill_stats(
        self, result, results, failed, shards, jobs, good_seconds, good_words,
        start_time, counters, sources, attempts_used, journal_skipped,
        simulator, events, metrics_lost,
    ) -> None:
        per_partition: List[Dict[str, object]] = []
        merged = MetricRegistry()
        event_payloads: List[Dict[str, object]] = []
        if len(events):
            event_payloads.append(events.to_payload())
        for index in sorted(results):
            partial = results[index]
            stats = partial.stats
            # Journal-replayed partials may predate worker metrics; rebuild
            # their registry from the kept stats so the merge stays total.
            merged.merge_dict(stats.get("metrics") or partition_metrics(partial))
            if stats.get("worker_events"):
                event_payloads.append(stats["worker_events"])
            row = {
                "partition": index,
                "faults": len(shards[index]),
                "detected": len(partial.detected),
                "events_propagated": stats.get("events_propagated", 0),
                "words_evaluated": stats.get("words_evaluated", 0),
                "wall_time_s": stats.get("wall_time_s", 0.0),
                "source": sources.get(index, "worker"),
                "attempts": attempts_used.get(index, 1),
            }
            if metrics_lost.get(index):
                # Timeout-killed / crashed attempts did work whose
                # metrics never arrived: state it, don't hide it.
                row["metrics_lost_attempts"] = metrics_lost[index]
            per_partition.append(row)
        walls = [p["wall_time_s"] for p in per_partition if p["wall_time_s"] > 0]
        imbalance = (max(walls) / (sum(walls) / len(walls))) if walls else 1.0
        total_lost = sum(metrics_lost.values())
        if total_lost:
            # Make the loss visible *inside* the merged registry, next to
            # the counters it undercuts: consumers see the totals are a
            # lower bound without cross-referencing the partition list.
            merged.counter("faultsim.metrics_lost_attempts").add(total_lost)
        result.stats.update(
            engine=self.name,
            jobs=jobs,
            seed=self.seed,
            word_width=simulator.word_width,
            kernel=simulator.kernel,
            faults_simulated=result.total_faults,
            n_partitions=len(shards),
            partitions=per_partition,
            # Derived from the merged worker registries rather than the raw
            # partition list: the production totals ride the same
            # associative merge the observability layer guarantees.
            events_propagated=merged.counter("faultsim.events_propagated").value,
            words_evaluated=good_words
            + merged.counter("faultsim.words_evaluated").value,
            good_words_evaluated=good_words,
            load_imbalance=round(imbalance, 3),
            good_response_s=good_seconds,
            wall_time_s=time.perf_counter() - start_time,
            journal_skipped=journal_skipped,
            metrics=merged.to_dict(),
            **counters,
        )
        if total_lost:
            result.stats["metrics_lost_attempts"] = total_lost
            result.stats["metrics_lower_bound"] = True
        if event_payloads:
            result.stats["events"] = event_payloads
        if self.journal is not None:
            result.stats["journal_path"] = self.journal.path
        if failed:
            result.stats["failed_partitions"] = failed
            result.stats["coverage_lower_bound"] = result.coverage
