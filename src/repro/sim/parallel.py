"""Bit-parallel 2-valued simulation.

One Python integer per signal carries up to :data:`WORD_WIDTH` test patterns
(bit *k* of every word belongs to pattern *k*).  This is the engine behind
PPSFP fault simulation (E3) and the LBIST/compression experiments, where
thousands of fully-specified patterns must be evaluated quickly.

X values are not represented here — callers X-fill patterns first (the
standard practice before parallel fault simulation).
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit.gates import GateType, evaluate_parallel
from ..circuit.netlist import Netlist
from .view import CombinationalView

#: Patterns carried per simulation pass (one machine word).
WORD_WIDTH = 64


def pack_patterns(patterns: Sequence[Sequence[int]], position: int) -> int:
    """Pack bit ``position`` of up to 64 patterns into one word."""
    word = 0
    for bit, pattern in enumerate(patterns):
        if pattern[position]:
            word |= 1 << bit
    return word


def unpack_word(word: int, count: int) -> List[int]:
    """Expand a packed word back into ``count`` single-bit values."""
    return [(word >> bit) & 1 for bit in range(count)]


class ParallelSimulator:
    """Word-parallel good-machine simulator over the full-scan view."""

    def __init__(self, netlist: Netlist):
        netlist.finalize()
        self.netlist = netlist
        self.view = CombinationalView(netlist)
        # Precompute the evaluation schedule once: (index, type, fanin).
        self._schedule = [
            (g.index, g.type, tuple(g.fanin))
            for g in (netlist.gates[i] for i in netlist.topo_order)
            if g.type != GateType.INPUT and not g.is_sequential
        ]
        #: Gate evaluations per full-circuit pass (instrumentation unit for
        #: the fault simulators' ``words_evaluated`` counters).
        self.num_scheduled = len(self._schedule)

    def evaluate_words(self, input_words: Sequence[int], n_patterns: int) -> List[int]:
        """Evaluate all gates for a packed batch of ``n_patterns`` patterns.

        ``input_words`` holds one packed word per test input (PIs + flops in
        view order).  Returns packed values for every gate.
        """
        if n_patterns > WORD_WIDTH:
            raise ValueError(f"at most {WORD_WIDTH} patterns per pass")
        if len(input_words) != self.view.num_inputs:
            raise ValueError(
                f"expected {self.view.num_inputs} input words, got {len(input_words)}"
            )
        mask = (1 << n_patterns) - 1
        words: List[int] = [0] * len(self.netlist.gates)
        for position, gate_index in enumerate(self.view.input_gates):
            words[gate_index] = input_words[position] & mask
        for gate_index, gate_type, fanin in self._schedule:
            words[gate_index] = evaluate_parallel(
                gate_type, [words[driver] for driver in fanin], mask
            )
        return words

    def evaluate_batch(self, patterns: Sequence[Sequence[int]]) -> List[List[int]]:
        """Evaluate up to 64 patterns; returns one response vector each."""
        n_patterns = len(patterns)
        input_words = [
            pack_patterns(patterns, position)
            for position in range(self.view.num_inputs)
        ]
        words = self.evaluate_words(input_words, n_patterns)
        responses: List[List[int]] = [[] for _ in range(n_patterns)]
        for reader in self.view.output_readers:
            word = words[reader]
            for bit in range(n_patterns):
                responses[bit].append((word >> bit) & 1)
        return responses

    def responses(self, patterns: Sequence[Sequence[int]]) -> List[List[int]]:
        """Evaluate any number of patterns, batching 64 at a time."""
        out: List[List[int]] = []
        for start in range(0, len(patterns), WORD_WIDTH):
            out.extend(self.evaluate_batch(patterns[start : start + WORD_WIDTH]))
        return out
