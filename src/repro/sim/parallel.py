"""Bit-parallel 2-valued simulation with a compiled wide-word kernel.

One Python integer per signal carries up to :attr:`ParallelSimulator.word_width`
test patterns (bit *k* of every word belongs to pattern *k*).  This is the
engine behind PPSFP fault simulation (E3) and the LBIST/compression
experiments, where thousands of fully-specified patterns must be evaluated
quickly.

Two things make the kernel fast:

* **Wide words** — ``word_width`` is configurable (the supported ladder is
  :data:`WORD_WIDTHS`, 64 → 4096).  Python bigints carry any width, so the
  constant per-gate interpreter overhead is amortized over up to 64× more
  patterns per pass.
* **Compiled schedule** — the evaluation schedule is compiled once per
  netlist into per-gate specialized closures (AND/OR/XOR/NOT/MUX fast paths
  with unrolled 2-input forms, fanin indices pre-resolved) instead of
  calling the generic ``evaluate_parallel(type, list, mask)`` dispatcher per
  gate per pass.

Evaluated blocks are memoized in a process-wide good-machine response cache
(:mod:`repro.sim.goodcache`) keyed by netlist structural signature and
packed block content, so flows that re-simulate identical pattern blocks
(ATPG verify/top-off, LBIST signatures, repeated experiment sweeps) skip
the pass entirely.  Returned word lists may therefore be shared — treat
them as immutable.

X values are not represented here — callers X-fill patterns first (the
standard practice before parallel fault simulation).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..circuit.gates import GateType, compile_parallel_evaluator
from ..circuit.netlist import Netlist
from . import goodcache
from .view import CombinationalView

#: Default patterns carried per simulation pass (one machine word).
WORD_WIDTH = 64

#: The supported word-width ladder.  Any positive width works; these are the
#: sizes the benchmarks characterize.  Beyond 4096 the bigint ops dominate
#: the python kernel and the per-gate amortization has nothing left to win —
#: the numpy kernel (``kernel="numpy"``) keeps scaling there (E3 extends the
#: ladder to 8192/16384 on it).
WORD_WIDTHS = (64, 256, 1024, 4096)

#: The selectable simulation kernels: ``"python"`` packs patterns into
#: Python bigints (one word per signal), ``"numpy"`` into uint64 lane
#: arrays (:mod:`repro.sim.npsim`).  Results are bit-identical; numpy wins
#: at wide words on replicated circuits, python at narrow words and on
#: single-pattern flows (PODEM verify, serial engine).
KERNELS = ("python", "numpy")


def validate_kernel(kernel: str) -> str:
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of {', '.join(KERNELS)}"
        )
    return kernel


def pack_patterns(patterns: Sequence[Sequence[int]], position: int) -> int:
    """Pack bit ``position`` of any number of patterns into one word."""
    word = 0
    for bit, pattern in enumerate(patterns):
        if pattern[position]:
            word |= 1 << bit
    return word


def unpack_word(word: int, count: int) -> List[int]:
    """Expand a packed word back into ``count`` single-bit values."""
    return [(word >> bit) & 1 for bit in range(count)]


def _compile_op(out: int, gate_type: GateType, fanin: Sequence[int]) -> Callable:
    """One compiled schedule step: ``op(words, mask)`` writes ``words[out]``.

    Indices are bound as default arguments (faster than closure cells), and
    the non-inverting forms skip masking — every word in the buffer is
    already masked, an invariant :meth:`ParallelSimulator.evaluate_words`
    maintains at input load.
    """
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        def op(w, m, o=out, a=fanin[0]):
            w[o] = w[a]

        return op
    if gate_type == GateType.NOT:
        def op(w, m, o=out, a=fanin[0]):
            w[o] = ~w[a] & m

        return op
    if gate_type == GateType.CONST0:
        def op(w, m, o=out):
            w[o] = 0

        return op
    if gate_type == GateType.CONST1:
        def op(w, m, o=out):
            w[o] = m

        return op
    if gate_type == GateType.MUX2:
        def op(w, m, o=out, s=fanin[0], a=fanin[1], b=fanin[2]):
            select = w[s]
            w[o] = (~select & w[a]) | (select & w[b])

        return op
    if len(fanin) == 2 and gate_type in (
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ):
        a_index, b_index = fanin
        if gate_type == GateType.AND:
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = w[a] & w[b]

        elif gate_type == GateType.NAND:
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = ~(w[a] & w[b]) & m

        elif gate_type == GateType.OR:
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = w[a] | w[b]

        elif gate_type == GateType.NOR:
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = ~(w[a] | w[b]) & m

        elif gate_type == GateType.XOR:
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = w[a] ^ w[b]

        else:  # XNOR
            def op(w, m, o=out, a=a_index, b=b_index):
                w[o] = ~(w[a] ^ w[b]) & m

        return op
    # n-ary fallback with the dispatch still resolved at compile time.
    evaluator = compile_parallel_evaluator(gate_type, len(fanin))

    def op(w, m, o=out, fi=tuple(fanin), fn=evaluator):
        w[o] = fn([w[i] for i in fi], m)

    return op


class ParallelSimulator:
    """Word-parallel good-machine simulator over the full-scan view.

    ``word_width`` sets the patterns carried per pass (default 64, see
    :data:`WORD_WIDTHS` for the characterized ladder).  ``cache`` is a
    :class:`repro.sim.goodcache.GoodMachineCache` (default: the process-wide
    cache; pass ``None`` to disable memoization).

    Instrumentation: :attr:`evaluations` counts full-schedule passes
    actually computed, :attr:`cache_hits`/:attr:`cache_misses` count lookup
    outcomes for this instance.
    """

    def __init__(
        self,
        netlist: Netlist,
        word_width: int = WORD_WIDTH,
        cache: object = goodcache.USE_DEFAULT,
        kernel: str = "python",
    ):
        if word_width < 1:
            raise ValueError(f"word_width must be positive, got {word_width}")
        validate_kernel(kernel)
        netlist.finalize()
        self.netlist = netlist
        self.word_width = word_width
        self.kernel = kernel
        self.view = CombinationalView(netlist)
        # The evaluation schedule, kept in tuple form for introspection...
        self._schedule = [
            (g.index, g.type, tuple(g.fanin))
            for g in (netlist.gates[i] for i in netlist.topo_order)
            if g.type != GateType.INPUT and not g.is_sequential
        ]
        # ...and compiled once into per-gate specialized closures.
        self._ops = tuple(
            _compile_op(index, gate_type, fanin)
            for index, gate_type, fanin in self._schedule
        )
        #: Gate evaluations per full-circuit pass (instrumentation unit for
        #: the fault simulators' ``words_evaluated`` counters).
        self.num_scheduled = len(self._schedule)
        self._signature = netlist.structural_signature()
        self._cache = goodcache.resolve_cache(cache)
        self._pack_buffer: List[int] = [0] * self.view.num_inputs
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: The compiled numpy engine, present only under ``kernel="numpy"``
        #: (the python closures above are always built — they are cheap and
        #: the serial/transition/bridging paths stay on bigint words).
        self.np_kernel = None
        if kernel == "numpy":
            from . import npsim

            self.np_kernel = npsim.NumpyKernel(netlist, self.view, self._schedule)

    @property
    def cache(self) -> Optional[goodcache.GoodMachineCache]:
        return self._cache

    def pack_block(self, patterns: Sequence[Sequence[int]]) -> List[int]:
        """Pack a pattern block into the reused per-position word buffer.

        Returns the simulator's internal buffer (one packed word per test
        input in view order) — valid until the next ``pack_block`` call.
        Reusing one preallocated list avoids rebuilding ``input_words``
        lists per chunk, which shows up in E3 profiles.
        """
        buffer = self._pack_buffer
        for position in range(len(buffer)):
            word = 0
            for bit, pattern in enumerate(patterns):
                if pattern[position]:
                    word |= 1 << bit
            buffer[position] = word
        return buffer

    def evaluate_words(
        self, input_words: Sequence[int], n_patterns: int
    ) -> List[int]:
        """Evaluate all gates for a packed batch of ``n_patterns`` patterns.

        ``input_words`` holds one packed word per test input (PIs + flops in
        view order).  Returns packed values for every gate.  The returned
        list may be served from (and is stored into) the good-machine cache:
        treat it as immutable.
        """
        if n_patterns > self.word_width:
            raise ValueError(f"at most {self.word_width} patterns per pass")
        if len(input_words) != self.view.num_inputs:
            raise ValueError(
                f"expected {self.view.num_inputs} input words, got {len(input_words)}"
            )
        mask = (1 << n_patterns) - 1
        cache = self._cache
        key = None
        if cache is not None:
            key = (
                self._signature,
                n_patterns,
                tuple(word & mask for word in input_words),
            )
            cached = cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        words: List[int] = [0] * len(self.netlist.gates)
        for position, gate_index in enumerate(self.view.input_gates):
            words[gate_index] = input_words[position] & mask
        for op in self._ops:
            op(words, mask)
        self.evaluations += 1
        if cache is not None:
            cache.put(key, words, n_patterns)
        return words

    def evaluate_array(self, packed, n_patterns: int):
        """Numpy-kernel twin of :meth:`evaluate_words`.

        ``packed`` is the ``(num_inputs, n_lanes)`` uint64 lane matrix from
        :meth:`repro.sim.npsim.NumpyKernel.pack_block`; returns a
        :class:`repro.sim.npsim.GoodBlock` of all gate values, served from
        (and stored into) the same good-machine cache as the bigint path —
        the byte-content keys never collide with the tuple keys the python
        kernel uses.  Treat the returned block as immutable.
        """
        kernel = self.np_kernel
        if kernel is None:
            raise RuntimeError("evaluate_array requires kernel='numpy'")
        if n_patterns > self.word_width:
            raise ValueError(f"at most {self.word_width} patterns per pass")
        if packed.shape[0] != self.view.num_inputs:
            raise ValueError(
                f"expected {self.view.num_inputs} input rows, got {packed.shape[0]}"
            )
        cache = self._cache
        key = None
        if cache is not None:
            mask = kernel.mask(n_patterns)
            key = (self._signature, n_patterns, (packed & mask).tobytes())
            cached = cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        block = kernel.run_pass(packed, n_patterns)
        self.evaluations += 1
        if cache is not None:
            cache.put(key, block, n_patterns)
        return block

    def evaluate_batch(self, patterns: Sequence[Sequence[int]]) -> List[List[int]]:
        """Evaluate up to ``word_width`` patterns; one response vector each."""
        n_patterns = len(patterns)
        words = self.evaluate_words(self.pack_block(patterns), n_patterns)
        responses: List[List[int]] = [[] for _ in range(n_patterns)]
        for reader in self.view.output_readers:
            word = words[reader]
            for bit in range(n_patterns):
                responses[bit].append((word >> bit) & 1)
        return responses

    def responses(self, patterns: Sequence[Sequence[int]]) -> List[List[int]]:
        """Evaluate any number of patterns, ``word_width`` at a time."""
        if self.np_kernel is not None:
            return self._responses_array(patterns)
        out: List[List[int]] = []
        width = self.word_width
        for start in range(0, len(patterns), width):
            out.extend(self.evaluate_batch(patterns[start : start + width]))
        return out

    def _responses_array(self, patterns: Sequence[Sequence[int]]) -> List[List[int]]:
        """Numpy-kernel responses: vectorized pack, pass, and unpack."""
        from . import npsim

        kernel = self.np_kernel
        bits = npsim.as_bit_matrix(patterns)
        readers = self.view.output_readers
        out: List[List[int]] = []
        width = self.word_width
        for start in range(0, len(bits), width):
            chunk = bits[start : start + width]
            block = self.evaluate_array(kernel.pack_block(chunk), len(chunk))
            out.extend(kernel.read_rows(block, readers).tolist())
        return out
