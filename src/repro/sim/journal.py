"""Campaign journal: JSONL checkpoint/resume for fault-sim campaigns.

An accelerator-scale fault-simulation campaign (Sadi & Guin's yield-loss
setting) runs for hours; losing it to one OOM kill and restarting from
zero is exactly the fragility the tutorial warns about in the chips
themselves.  The journal makes completed work durable: every graded
partition is appended — and flushed — as one JSON line, so a killed
campaign resumes by replaying the file and re-running only the shards
that never finished.  Because partitioning is deterministic (seeded
shuffle, partition count independent of worker count), the resumed merge
is bit-identical to an uninterrupted run.

A journal file is a sequence of *sections*.  Each section starts with a
``header`` line carrying a :class:`CampaignKey` — the netlist's
structural signature, digests of the pattern set and fault universe, the
partition seed and count, and the drop flag — followed by ``partition``
lines holding serialized per-shard results.  Results are only valid for
an identical campaign, so resume matches the *whole* key; several
campaigns (e.g. the random-phase batches and the verify pass of one
``run_atpg`` flow) can safely share one file, each finding only its own
sections.

Stuck-at faults serialize as ``[gate, pin, value]`` triples — the frozen
dataclass round-trips losslessly through
:func:`repro.faults.model.StuckAtFault`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..faults.model import StuckAtFault
from .faultsim import FaultSimResult

JOURNAL_VERSION = 1

#: Per-partition stats fields preserved through a journal round-trip.
#: ``metrics`` is the worker's serialized metric registry (plain dicts,
#: JSON-safe) so replayed partials merge into observations like fresh ones.
_KEPT_STATS = ("events_propagated", "words_evaluated", "wall_time_s", "metrics")


class JournalMismatchError(ValueError):
    """A strict journal holds no section matching the requested campaign."""


def pattern_digest(patterns: Sequence[Sequence[int]]) -> str:
    """Stable digest of a pattern set (order- and value-sensitive)."""
    hasher = hashlib.sha256()
    hasher.update(f"{len(patterns)}:".encode())
    for pattern in patterns:
        hasher.update(bytes(int(bit) & 1 for bit in pattern))
        hasher.update(b";")
    return hasher.hexdigest()[:24]


def fault_digest(faults: Iterable[StuckAtFault]) -> str:
    """Stable digest of a fault universe (order-insensitive)."""
    hasher = hashlib.sha256()
    for gate, pin, value in sorted((f.gate, f.pin, f.value) for f in faults):
        hasher.update(f"{gate},{pin},{value};".encode())
    return hasher.hexdigest()[:24]


@dataclass(frozen=True)
class CampaignKey:
    """Identity of one shardable campaign; journal entries bind to it."""

    signature: str
    patterns: str
    faults: str
    seed: int
    partitions: int
    drop: bool

    @classmethod
    def build(
        cls,
        netlist,
        patterns: Sequence[Sequence[int]],
        universe: Iterable[StuckAtFault],
        seed: int,
        partitions: int,
        drop: bool,
    ) -> "CampaignKey":
        return cls(
            signature=netlist.structural_signature(),
            patterns=pattern_digest(patterns),
            faults=fault_digest(universe),
            seed=seed,
            partitions=partitions,
            drop=drop,
        )


def serialize_partial(index: int, partial: FaultSimResult) -> Dict[str, object]:
    """JSON-safe form of one shard result (shared with :mod:`repro.sim.store`)."""
    return {
        "kind": "partition",
        "index": index,
        "total": partial.total_faults,
        "patterns_simulated": partial.patterns_simulated,
        "detected": [
            [f.gate, f.pin, f.value, first]
            for f, first in sorted(
                partial.detected.items(), key=lambda kv: (kv[0].gate, kv[0].pin, kv[0].value)
            )
        ],
        "undetected": [[f.gate, f.pin, f.value] for f in partial.undetected],
        "stats": {
            k: partial.stats[k] for k in _KEPT_STATS if k in partial.stats
        },
    }


def deserialize_partial(line: Dict[str, object]) -> FaultSimResult:
    """Rebuild a :class:`FaultSimResult` from :func:`serialize_partial` output."""
    partial = FaultSimResult(total_faults=int(line["total"]))
    for gate, pin, value, first in line["detected"]:
        partial.detected[StuckAtFault(gate, pin, value)] = int(first)
    partial.undetected = [
        StuckAtFault(gate, pin, value) for gate, pin, value in line["undetected"]
    ]
    partial.patterns_simulated = int(line["patterns_simulated"])
    partial.stats.update(line.get("stats", {}))
    partial.stats["journaled"] = True
    return partial


# Backwards-compatible aliases (pre-store internal names).
_serialize_partial = serialize_partial
_deserialize_partial = deserialize_partial


class CampaignJournal:
    """Append-only JSONL log of completed campaign partitions.

    ``strict=True`` makes :meth:`begin` raise :class:`JournalMismatchError`
    when the file already holds sections but none match the requested key
    — the right behavior for a CLI ``--resume`` pointed at the wrong
    circuit or pattern file.  The default (non-strict) simply starts a new
    section, which is what multi-campaign flows like ``run_atpg`` need.
    """

    def __init__(self, path: str, strict: bool = False, durable: bool = True):
        self.path = str(path)
        self.strict = strict
        # ``durable`` controls the power-loss story: section headers are
        # written via fsync + atomic rename (never torn), and every shard
        # line is fsynced after the flush.  Heartbeats stay flush-only —
        # they are loss-tolerant progress gauges, not checkpoints.
        self.durable = durable
        self._handle = None
        self._sections = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _read_lines(self) -> List[Dict[str, object]]:
        if not os.path.exists(self.path):
            return []
        lines: List[Dict[str, object]] = []
        with open(self.path, "r") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    lines.append(json.loads(raw))
                except json.JSONDecodeError:
                    # A kill mid-write can leave one torn trailing line;
                    # everything before it is intact and usable.
                    break
        return lines

    def completed_for(self, key: CampaignKey) -> Dict[int, FaultSimResult]:
        """All journaled partition results belonging to ``key``."""
        completed: Dict[int, FaultSimResult] = {}
        key_dict = asdict(key)
        in_matching_section = False
        for line in self._read_lines():
            kind = line.get("kind")
            if kind == "header":
                self._sections += 1
                in_matching_section = line.get("key") == key_dict
            elif kind == "partition" and in_matching_section:
                completed[int(line["index"])] = deserialize_partial(line)
        return completed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def begin(self, key: CampaignKey) -> Dict[int, FaultSimResult]:
        """Open a new section for ``key``; return prior completed shards."""
        self._sections = 0
        completed = self.completed_for(key)
        if self.strict and self._sections and not completed:
            raise JournalMismatchError(
                f"journal {self.path!r} holds {self._sections} section(s) but "
                f"none match this campaign (circuit, patterns, fault universe, "
                f"seed, and partition count must all be identical)"
            )
        header = {"kind": "header", "version": JOURNAL_VERSION, "key": asdict(key)}
        if self.durable:
            self._write_section(header)
        else:
            self._append(header)
        return completed

    def _write_section(self, header: Dict[str, object]) -> None:
        """Append a section header via fsync + atomic rename.

        A host power-loss mid-``begin`` must never leave a half-written
        header (a torn *trailing* shard line is tolerated by readers, but
        a torn header would orphan every line after it).  The prior file
        content plus the new header is written to a sibling temp file,
        fsynced, and renamed over the journal — the OS guarantees readers
        see either the old intact file or the new one, never a mix.  As a
        side effect any torn trailing line from a previous crash is
        dropped here, so each section starts from a clean file.
        """
        self.close()
        lines = self._read_lines()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            for line in lines:
                handle.write(json.dumps(line, separators=(",", ":")) + "\n")
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Make the rename itself durable (the directory entry)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platforms without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def record(self, index: int, partial: FaultSimResult) -> None:
        """Durably append one completed partition result."""
        self._append(serialize_partial(index, partial))
        if self.durable:
            os.fsync(self._handle.fileno())

    def heartbeat(self, **fields: object) -> None:
        """Append one progress line (``kind: heartbeat``) to the journal.

        The supervisor flushes campaign-level progress gauges
        (``faults_graded``/``faults_total``, partitions done) here on
        every shard flush, which is what lets ``repro obs tail`` show a
        running campaign's progress from the outside.  Readers that only
        care about resume (``completed_for``) skip unknown kinds, so
        heartbeats are free to evolve.
        """
        self._append({"kind": "heartbeat", "t_wall": time.time(), **fields})

    def _append(self, line: Dict[str, object]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(line, separators=(",", ":")) + "\n")
        self._handle.flush()

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_campaign_progress(path: str) -> Dict[str, object]:
    """Live progress of the *last* campaign section in a journal file.

    Built for ``repro obs tail``: reads the journal exactly like resume
    does (torn trailing line tolerated), keeps the final campaign — all
    trailing sections that share the last header's key, so a resumed
    run's fresh (possibly empty) section still counts the shards its
    predecessors checkpointed — and summarizes it::

        {
          "path": ..., "sections": N, "key": {...} | None,
          "partitions_done": [indices...],
          "faults_graded": <sum of graded shard sizes>,
          "detected": <sum of detections so far>,
          "heartbeats": {partition_or_-1: <last heartbeat fields>},
          "last_heartbeat": {...} | None,
        }

    Heartbeat lines override the summed counts when present (they carry
    the supervisor's own ``faults_graded``/``faults_total`` gauges, which
    include journal-skipped shards a bare partition count would miss).
    """
    journal = CampaignJournal(path)
    sections = 0
    key: Optional[Dict[str, object]] = None
    partitions: Dict[int, Dict[str, object]] = {}
    heartbeats: Dict[int, Dict[str, object]] = {}
    last_heartbeat: Optional[Dict[str, object]] = None
    for line in journal._read_lines():
        kind = line.get("kind")
        if kind == "header":
            sections += 1
            new_key = line.get("key")
            if sections == 1 or new_key != key:
                partitions = {}
                heartbeats = {}
                last_heartbeat = None
            key = new_key
        elif kind == "partition":
            partitions[int(line["index"])] = {
                "faults": int(line.get("total", 0)),
                "detected": len(line.get("detected", ())),
            }
        elif kind == "heartbeat":
            fields = {k: v for k, v in line.items() if k != "kind"}
            partition = fields.get("partition")
            heartbeats[int(partition) if partition is not None else -1] = fields
            last_heartbeat = fields
    progress: Dict[str, object] = {
        "path": str(path),
        "sections": sections,
        "key": key,
        "partitions_done": sorted(partitions),
        "faults_graded": sum(p["faults"] for p in partitions.values()),
        "detected": sum(p["detected"] for p in partitions.values()),
        "heartbeats": heartbeats,
        "last_heartbeat": last_heartbeat,
    }
    if last_heartbeat is not None:
        for gauge in ("faults_graded", "faults_total", "partitions_total"):
            if gauge in last_heartbeat:
                progress[gauge] = last_heartbeat[gauge]
        if "partitions_done" in last_heartbeat:
            progress["partitions_done_count"] = last_heartbeat["partitions_done"]
    return progress
