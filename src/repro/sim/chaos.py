"""Deterministic chaos injection for the supervised fault-sim pool.

The tutorial's resilience story (map-out, repair, graceful degradation)
only counts if it is *tested*: a recovery path that has never seen a
failure is dead code.  :class:`ChaosPlan` lets the test-suite — and the
``repro faultsim --chaos`` flag — make a specific attempt at a specific
partition fail in a specific way:

* ``crash``   — the worker process exits hard (``os._exit``), as if
  OOM-killed; the supervisor sees a dead process with no result.
* ``hang``    — the worker sleeps past any sane deadline; the supervisor
  must kill it on the partition timeout.
* ``raise``   — the worker raises inside the kernel; the supervisor gets
  an error message instead of a result.
* ``corrupt`` — the worker returns a *structurally invalid* partial
  result (a fault missing from the shard accounting, or an out-of-range
  first-detection index); the supervisor's validator must reject it.

A plan is a mapping ``partition index -> (mode per attempt, ...)``; an
attempt past the end of its tuple runs clean, so ``("crash", "crash")``
means "die twice, then succeed".  The supervisor numbers pool attempts
``0..max_retries`` and the inline parent fallback ``max_retries + 1``,
so a tuple long enough to cover the inline attempt produces a partition
that *cannot* be recovered — the graceful-degradation path.  Everything
is deterministic: the same plan yields the same failure schedule on
every run, which is what lets the differential tests assert bit-identity
of the recovered result.

``corrupt`` injects only validator-visible damage.  A semantically
plausible wrong answer (a legal but incorrect detection index) is
undetectable without redundant execution and out of scope here.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

CRASH = "crash"
HANG = "hang"
RAISE = "raise"
CORRUPT = "corrupt"

#: Modes accepted in a :class:`ChaosPlan` schedule.
MODES = (CRASH, HANG, RAISE, CORRUPT)

#: Exit status used by ``crash`` injections — distinctive in ``ps``/logs.
CRASH_EXIT_CODE = 86


class ChaosError(RuntimeError):
    """The exception ``raise`` injections throw inside a worker."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic failure schedule: partition index -> mode per attempt."""

    schedule: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    hang_s: float = 3600.0

    def __post_init__(self):
        for partition, modes in self.schedule.items():
            if not isinstance(partition, int) or partition < 0:
                raise ValueError(
                    f"chaos partition index must be a non-negative int, "
                    f"got {partition!r}"
                )
            for mode in modes:
                if mode not in MODES:
                    raise ValueError(
                        f"unknown chaos mode {mode!r}; expected one of {MODES}"
                    )

    @classmethod
    def single(cls, partition: int, mode: str, times: int = 1, **kwargs) -> "ChaosPlan":
        """Fail one partition's first ``times`` attempts with ``mode``."""
        return cls(schedule={partition: (mode,) * times}, **kwargs)

    @classmethod
    def parse(cls, specs: Sequence[str], **kwargs) -> "ChaosPlan":
        """Parse CLI specs like ``2:crash,crash,raise`` (repeatable flag)."""
        schedule: Dict[int, Tuple[str, ...]] = {}
        for spec in specs:
            partition_text, _, modes_text = spec.partition(":")
            try:
                partition = int(partition_text)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec {spec!r}: expected PARTITION:mode[,mode...]"
                ) from None
            modes = tuple(m.strip() for m in modes_text.split(",") if m.strip())
            if not modes:
                raise ValueError(f"bad chaos spec {spec!r}: no modes given")
            schedule[partition] = schedule.get(partition, ()) + modes
        return cls(schedule=schedule, **kwargs)

    def mode_for(self, partition: int, attempt: int) -> "str | None":
        """The injected mode for this (partition, attempt), or None (clean)."""
        modes = self.schedule.get(partition)
        if modes is None or attempt >= len(modes):
            return None
        return modes[attempt]

    # ------------------------------------------------------------------
    # Injection hooks (called from inside the worker / inline fallback)
    # ------------------------------------------------------------------

    def execute_pre(self, partition: int, attempt: int, inline: bool = False) -> None:
        """Pre-simulation hook: crash, hang, or raise as scheduled.

        ``inline`` marks the supervisor's in-parent fallback attempt:
        there is no supervisor above the parent to recover a hard exit or
        kill a sleep, so ``crash``/``hang`` degrade to :class:`ChaosError`
        there — the shard still fails, the process survives.
        """
        mode = self.mode_for(partition, attempt)
        if mode in (CRASH, HANG) and inline:
            raise ChaosError(
                f"injected {mode}: partition {partition} inline attempt {attempt}"
            )
        if mode == CRASH:
            os._exit(CRASH_EXIT_CODE)
        if mode == HANG:
            # The supervisor is expected to kill this process at the
            # partition deadline; the sleep is merely "long enough".
            time.sleep(self.hang_s)
        if mode == RAISE:
            raise ChaosError(
                f"injected failure: partition {partition} attempt {attempt}"
            )

    def corrupt_result(self, partition: int, attempt: int, partial, n_patterns: int):
        """Post-simulation hook: damage the partial result detectably."""
        if self.mode_for(partition, attempt) != CORRUPT:
            return partial
        if partial.undetected:
            # Drop a survivor from the accounting: the shard universe is
            # no longer covered, which the validator must notice.
            partial.undetected = partial.undetected[:-1]
        elif partial.detected:
            # Point a detection past the pattern set.
            fault = next(iter(partial.detected))
            partial.detected[fault] = n_patterns + 1
        return partial
