"""Deterministic chaos injection for the supervised fault-sim pool.

The tutorial's resilience story (map-out, repair, graceful degradation)
only counts if it is *tested*: a recovery path that has never seen a
failure is dead code.  :class:`ChaosPlan` lets the test-suite — and the
``repro faultsim --chaos`` flag — make a specific attempt at a specific
partition fail in a specific way:

* ``crash``   — the worker process exits hard (``os._exit``), as if
  OOM-killed; the supervisor sees a dead process with no result.
* ``hang``    — the worker sleeps past any sane deadline; the supervisor
  must kill it on the partition timeout.
* ``raise``   — the worker raises inside the kernel; the supervisor gets
  an error message instead of a result.
* ``corrupt`` — the worker returns a *structurally invalid* partial
  result (a fault missing from the shard accounting, or an out-of-range
  first-detection index); the supervisor's validator must reject it.

A plan is a mapping ``partition index -> (mode per attempt, ...)``; an
attempt past the end of its tuple runs clean, so ``("crash", "crash")``
means "die twice, then succeed".  The supervisor numbers pool attempts
``0..max_retries`` and the inline parent fallback ``max_retries + 1``,
so a tuple long enough to cover the inline attempt produces a partition
that *cannot* be recovered — the graceful-degradation path.  Everything
is deterministic: the same plan yields the same failure schedule on
every run, which is what lets the differential tests assert bit-identity
of the recovered result.

``corrupt`` injects only validator-visible damage.  A semantically
plausible wrong answer (a legal but incorrect detection index) is
undetectable without redundant execution and out of scope here.

Multi-runner campaigns over a shared shard store (:mod:`repro.sim.store`)
add a second failure domain: the *host*.  :class:`HostChaosPlan` injects
deterministic host-level failures into a named runner:

* ``kill``      — the whole runner process exits hard (``os._exit``)
  after publishing its N-th shard, leases still held; peers must steal
  the expired leases and finish the campaign.
* ``stall``     — the runner stops renewing its leases (it keeps
  grading and publishing), so peers steal shards it is still working
  on; the resulting double grade must converge via first-write-wins.
* ``partition`` — the runner loses the store for a window: no claims,
  renewals, or publishes go through until the window heals, after which
  queued publishes land late and must converge idempotently.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

CRASH = "crash"
HANG = "hang"
RAISE = "raise"
CORRUPT = "corrupt"

#: Modes accepted in a :class:`ChaosPlan` schedule.
MODES = (CRASH, HANG, RAISE, CORRUPT)

#: Exit status used by ``crash`` injections — distinctive in ``ps``/logs.
CRASH_EXIT_CODE = 86

KILL = "kill"
STALL = "stall"
PARTITION = "partition"

#: Host-level modes accepted in a :class:`HostChaosPlan` schedule.
HOST_MODES = (KILL, STALL, PARTITION)

#: Exit status used by host-level ``kill`` injections — distinct from the
#: worker-level ``crash`` code so tests can tell the domains apart.
HOST_KILL_EXIT_CODE = 87


class ChaosError(RuntimeError):
    """The exception ``raise`` injections throw inside a worker."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic failure schedule: partition index -> mode per attempt."""

    schedule: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    hang_s: float = 3600.0

    def __post_init__(self):
        for partition, modes in self.schedule.items():
            if not isinstance(partition, int) or partition < 0:
                raise ValueError(
                    f"chaos partition index must be a non-negative int, "
                    f"got {partition!r}"
                )
            for mode in modes:
                if mode not in MODES:
                    raise ValueError(
                        f"unknown chaos mode {mode!r}; expected one of {MODES}"
                    )

    @classmethod
    def single(cls, partition: int, mode: str, times: int = 1, **kwargs) -> "ChaosPlan":
        """Fail one partition's first ``times`` attempts with ``mode``."""
        return cls(schedule={partition: (mode,) * times}, **kwargs)

    @classmethod
    def parse(cls, specs: Sequence[str], **kwargs) -> "ChaosPlan":
        """Parse CLI specs like ``2:crash,crash,raise`` (repeatable flag)."""
        schedule: Dict[int, Tuple[str, ...]] = {}
        for spec in specs:
            partition_text, _, modes_text = spec.partition(":")
            try:
                partition = int(partition_text)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec {spec!r}: expected PARTITION:mode[,mode...]"
                ) from None
            modes = tuple(m.strip() for m in modes_text.split(",") if m.strip())
            if not modes:
                raise ValueError(f"bad chaos spec {spec!r}: no modes given")
            schedule[partition] = schedule.get(partition, ()) + modes
        return cls(schedule=schedule, **kwargs)

    def mode_for(self, partition: int, attempt: int) -> "str | None":
        """The injected mode for this (partition, attempt), or None (clean)."""
        modes = self.schedule.get(partition)
        if modes is None or attempt >= len(modes):
            return None
        return modes[attempt]

    # ------------------------------------------------------------------
    # Injection hooks (called from inside the worker / inline fallback)
    # ------------------------------------------------------------------

    def execute_pre(self, partition: int, attempt: int, inline: bool = False) -> None:
        """Pre-simulation hook: crash, hang, or raise as scheduled.

        ``inline`` marks the supervisor's in-parent fallback attempt:
        there is no supervisor above the parent to recover a hard exit or
        kill a sleep, so ``crash``/``hang`` degrade to :class:`ChaosError`
        there — the shard still fails, the process survives.
        """
        mode = self.mode_for(partition, attempt)
        if mode in (CRASH, HANG) and inline:
            raise ChaosError(
                f"injected {mode}: partition {partition} inline attempt {attempt}"
            )
        if mode == CRASH:
            os._exit(CRASH_EXIT_CODE)
        if mode == HANG:
            # The supervisor is expected to kill this process at the
            # partition deadline; the sleep is merely "long enough".
            time.sleep(self.hang_s)
        if mode == RAISE:
            raise ChaosError(
                f"injected failure: partition {partition} attempt {attempt}"
            )

    def corrupt_result(self, partition: int, attempt: int, partial, n_patterns: int):
        """Post-simulation hook: damage the partial result detectably."""
        if self.mode_for(partition, attempt) != CORRUPT:
            return partial
        if partial.undetected:
            # Drop a survivor from the accounting: the shard universe is
            # no longer covered, which the validator must notice.
            partial.undetected = partial.undetected[:-1]
        elif partial.detected:
            # Point a detection past the pattern set.
            fault = next(iter(partial.detected))
            partial.detected[fault] = n_patterns + 1
        return partial


# ----------------------------------------------------------------------
# Host-level chaos (multi-runner shard-store campaigns)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HostChaosInjection:
    """One runner's scheduled host failure.

    ``after_publishes`` is the trigger: the injection fires on the first
    supervision-loop pass once the runner has published that many shard
    results to the store (``0`` fires before any work).  ``duration_s``
    bounds ``stall``/``partition`` windows; ``0`` means "until the run
    ends" (``kill`` ignores it).
    """

    mode: str
    after_publishes: int = 0
    duration_s: float = 0.0

    def __post_init__(self):
        if self.mode not in HOST_MODES:
            raise ValueError(
                f"unknown host chaos mode {self.mode!r}; expected one of "
                f"{HOST_MODES}"
            )
        if self.after_publishes < 0:
            raise ValueError(
                f"after_publishes must be >= 0, got {self.after_publishes}"
            )
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")


@dataclass(frozen=True)
class HostChaosPlan:
    """Deterministic host-failure schedule: runner id -> injection.

    Every runner consults the plan with its own ``--runner-id``, so one
    shared plan string launches a whole fleet where exactly the named
    runner dies/stalls/partitions at a reproducible point — which is what
    lets the differential harness assert bit-identity of the survivors'
    merge.
    """

    schedule: Dict[str, HostChaosInjection] = field(default_factory=dict)

    @classmethod
    def single(
        cls, runner: str, mode: str, after: int = 0, duration_s: float = 0.0
    ) -> "HostChaosPlan":
        return cls(schedule={runner: HostChaosInjection(mode, after, duration_s)})

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "HostChaosPlan":
        """Parse CLI specs like ``r1:kill@2`` or ``r0:partition@1,0.5``.

        Format: ``RUNNER:MODE[@AFTER[,DURATION_S]]`` (repeatable flag; a
        later spec for the same runner replaces the earlier one).
        """
        schedule: Dict[str, HostChaosInjection] = {}
        for spec in specs:
            runner, sep, rest = spec.partition(":")
            if not sep or not runner or not rest:
                raise ValueError(
                    f"bad host chaos spec {spec!r}: expected "
                    f"RUNNER:MODE[@AFTER[,DURATION_S]]"
                )
            mode, _, trigger = rest.partition("@")
            after, duration = 0, 0.0
            if trigger:
                after_text, _, duration_text = trigger.partition(",")
                try:
                    after = int(after_text)
                    if duration_text:
                        duration = float(duration_text)
                except ValueError:
                    raise ValueError(
                        f"bad host chaos spec {spec!r}: AFTER must be an int "
                        f"and DURATION_S a float"
                    ) from None
            schedule[runner] = HostChaosInjection(mode.strip(), after, duration)
        return cls(schedule=schedule)

    def for_runner(self, runner: str) -> Optional[HostChaosInjection]:
        """The injection scheduled for ``runner``, or None (clean host)."""
        return self.schedule.get(runner)
