"""NumPy uint64 vectorized simulation kernel (``kernel="numpy"``).

Each signal is an ``(n_lanes,)`` little-endian uint64 array: lane ``j``
carries patterns ``64*j .. 64*j+63``, bit *k* of lane *j* belonging to
pattern ``64*j + k`` — exactly the bit order of the Python-bigint kernel
in :mod:`repro.sim.parallel`, so a packed row and the corresponding
bigint word are the same bytes (``int.from_bytes(row.tobytes(),
"little")``).  The same masked-words invariant holds: every value array
has all bits at positions ``>= n_patterns`` zero, non-inverting gate ops
preserve it for free, and only inverting ops re-mask.

Where the vectorization actually pays (profiled on the E3 ladder):

* **Pattern packing** — ``np.packbits`` over the transposed bit matrix
  replaces the pure-Python bit loop that dominates wide-word profiles
  (~67% of fault-sim wall time at ``word_width`` 4096).
* **Good-machine passes** — the compiled schedule runs as in-place
  array ops over one ``(num_gates, n_lanes)`` block.
* **Detection readout** — only readers actually present in the faulty
  map contribute to the detection word (everything else XORs to zero),
  replacing the all-readers bigint loop.

Cone propagation stays event-driven (fault cones on the replicated
AI-accelerator circuits average a few dozen events per fault, far too
small to win from full-array passes); convergence checks compare raw
row bytes, which beats ``np.array_equal`` by ~10x at these sizes.

This module requires :mod:`numpy` (a core dependency of ``repro.sim``);
:mod:`repro.sim.parallel` imports it lazily so the python kernel keeps
working even on an interpreter without numpy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist

#: Canonical lane dtype: little-endian uint64, so ``row.tobytes()`` is
#: the little-endian byte serialization of the equivalent bigint word.
LANE_DTYPE = np.dtype("<u8")

#: Patterns carried per lane.
LANE_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def lanes_for(n_patterns: int) -> int:
    """Lanes needed to carry ``n_patterns`` patterns."""
    return -(-n_patterns // LANE_BITS)


def lane_mask(n_patterns: int) -> np.ndarray:
    """The ``(n_lanes,)`` valid-bit mask for ``n_patterns`` patterns."""
    full, rem = divmod(n_patterns, LANE_BITS)
    mask = np.zeros(lanes_for(n_patterns), dtype=LANE_DTYPE)
    mask[:full] = _ALL_ONES
    if rem:
        mask[full] = np.uint64((1 << rem) - 1)
    mask.flags.writeable = False
    return mask


def as_bit_matrix(patterns: Sequence[Sequence[int]]) -> np.ndarray:
    """Convert a pattern block into a ``(n_patterns, n_inputs)`` uint8 matrix.

    The fast path serializes each pattern row through ``bytes()`` (C-speed
    for plain lists of 0/1 ints) — ~40% faster than ``np.array`` on a
    list-of-lists, and this conversion is the single biggest fixed cost of
    a numpy-kernel run.  Arrays pass through without copying when possible.
    """
    if isinstance(patterns, np.ndarray):
        return np.ascontiguousarray(patterns, dtype=np.uint8)
    n = len(patterns)
    if n == 0:
        return np.zeros((0, 0), dtype=np.uint8)
    width = len(patterns[0])
    try:
        buffer = b"".join(bytes(pattern) for pattern in patterns)
    except TypeError:
        return np.array(patterns, dtype=np.uint8)
    return np.frombuffer(buffer, dtype=np.uint8).reshape(n, width)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n_patterns, n_signals)`` bit matrix into uint64 lanes.

    Returns a ``(n_signals, n_lanes)`` array whose row *i* is the packed
    word of signal *i* — bit *k* of pattern *k*, identical bit order to
    :func:`repro.sim.parallel.pack_patterns`.  Rows are zero-padded past
    ``n_patterns``, so the masked-words invariant holds by construction.
    """
    n_patterns, n_signals = bits.shape
    n_lanes = lanes_for(max(n_patterns, 1))
    packed_bytes = np.packbits(bits.T, axis=1, bitorder="little")
    if packed_bytes.shape[1] != n_lanes * 8:
        padded = np.zeros((n_signals, n_lanes * 8), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    return np.ascontiguousarray(packed_bytes).view(LANE_DTYPE)


def unpack_bits(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(n_signals, n_lanes)`` lanes back to
    a ``(n_patterns, n_signals)`` bit matrix."""
    flat = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(flat, axis=1, bitorder="little", count=n_patterns).T


def words_to_int(row: np.ndarray) -> int:
    """The bigint word equivalent to one packed lane row."""
    return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")


def int_to_words(word: int, n_lanes: int) -> np.ndarray:
    """The packed lane row equivalent to one bigint word."""
    return np.frombuffer(
        word.to_bytes(n_lanes * 8, "little"), dtype=LANE_DTYPE
    ).copy()


class GoodBlock:
    """One good-machine pass over a pattern chunk, in lane form.

    ``values`` is the read-only ``(num_gates, n_lanes)`` array; ``raw``
    (lazy) is its flat byte image, sliced per gate for the cheap
    convergence compares in cone propagation.  Instances are shared
    through the good-machine cache — treat them as immutable.
    """

    __slots__ = ("values", "n_patterns", "n_lanes", "_raw")

    def __init__(self, values: np.ndarray, n_patterns: int):
        values.flags.writeable = False
        self.values = values
        self.n_patterns = n_patterns
        self.n_lanes = values.shape[1]
        self._raw: Optional[bytes] = None

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)

    def row(self, gate_index: int) -> np.ndarray:
        return self.values[gate_index]

    def row_bytes(self, gate_index: int) -> bytes:
        raw = self._raw
        if raw is None:
            raw = self._raw = self.values.tobytes()
        stride = self.n_lanes * 8
        return raw[gate_index * stride : (gate_index + 1) * stride]

    def word(self, gate_index: int) -> int:
        """The bigint word of one gate (cross-kernel checks and tests)."""
        return words_to_int(self.values[gate_index])


def compile_array_evaluator(gate_type: GateType, arity: int) -> Callable:
    """An array-op twin of :func:`repro.circuit.gates.compile_parallel_evaluator`.

    Returns ``fn(inputs, mask) -> np.ndarray`` over uint64 lane arrays,
    allocating its result (cone propagation stores it in the faulty map).
    Same precondition: inputs are already masked, so only inverting
    outputs re-mask.
    """
    if gate_type == GateType.CONST0:
        return lambda inputs, mask: np.zeros_like(mask)
    if gate_type == GateType.CONST1:
        return lambda inputs, mask: mask.copy()
    if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.DFF, GateType.SDFF):
        return lambda inputs, mask: inputs[0].copy()
    if gate_type == GateType.NOT:
        return lambda inputs, mask: ~inputs[0] & mask
    if gate_type == GateType.MUX2:
        def mux2(inputs, mask):
            select = inputs[0]
            return (~select & inputs[1]) | (select & inputs[2])

        return mux2
    if gate_type in (GateType.AND, GateType.NAND):
        if arity == 2 and gate_type == GateType.AND:
            return lambda inputs, mask: inputs[0] & inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] & inputs[1]) & mask

        def and_n(inputs, mask, invert=gate_type == GateType.NAND):
            acc = inputs[0].copy()
            for word in inputs[1:]:
                acc &= word
            return (~acc & mask) if invert else acc

        return and_n
    if gate_type in (GateType.OR, GateType.NOR):
        if arity == 2 and gate_type == GateType.OR:
            return lambda inputs, mask: inputs[0] | inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] | inputs[1]) & mask

        def or_n(inputs, mask, invert=gate_type == GateType.NOR):
            acc = inputs[0].copy()
            for word in inputs[1:]:
                acc |= word
            return (~acc & mask) if invert else acc

        return or_n
    if gate_type in (GateType.XOR, GateType.XNOR):
        if arity == 2 and gate_type == GateType.XOR:
            return lambda inputs, mask: inputs[0] ^ inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] ^ inputs[1]) & mask

        def xor_n(inputs, mask, invert=gate_type == GateType.XNOR):
            acc = inputs[0].copy()
            for word in inputs[1:]:
                acc ^= word
            return (~acc & mask) if invert else acc

        return xor_n
    if gate_type == GateType.INPUT:
        raise ValueError("INPUT gates are driven externally, not evaluated")
    raise ValueError(f"unsupported gate type: {gate_type}")


def _compile_pass_op(out: int, gate_type: GateType, fanin: Sequence[int]) -> Callable:
    """One compiled good-pass step: ``op(V, m)`` writes row ``V[out]``.

    In-place ``out=`` forms avoid per-gate temporaries on the hot
    2-input paths; the invariant mirrors :func:`repro.sim.parallel._compile_op`
    (inputs masked, only inverting ops re-mask).
    """
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        def op(V, m, o=out, a=fanin[0]):
            np.copyto(V[o], V[a])

        return op
    if gate_type == GateType.NOT:
        def op(V, m, o=out, a=fanin[0]):
            np.bitwise_not(V[a], out=V[o])
            np.bitwise_and(V[o], m, out=V[o])

        return op
    if gate_type == GateType.CONST0:
        def op(V, m, o=out):
            V[o].fill(0)

        return op
    if gate_type == GateType.CONST1:
        def op(V, m, o=out):
            np.copyto(V[o], m)

        return op
    if gate_type == GateType.MUX2:
        def op(V, m, o=out, s=fanin[0], a=fanin[1], b=fanin[2]):
            select = V[s]
            V[o] = (~select & V[a]) | (select & V[b])

        return op
    if len(fanin) == 2 and gate_type in (
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ):
        a_index, b_index = fanin
        ufunc = {
            GateType.AND: np.bitwise_and,
            GateType.NAND: np.bitwise_and,
            GateType.OR: np.bitwise_or,
            GateType.NOR: np.bitwise_or,
            GateType.XOR: np.bitwise_xor,
            GateType.XNOR: np.bitwise_xor,
        }[gate_type]
        if gate_type in (GateType.AND, GateType.OR, GateType.XOR):
            def op(V, m, o=out, a=a_index, b=b_index, fn=ufunc):
                fn(V[a], V[b], out=V[o])

        else:
            def op(V, m, o=out, a=a_index, b=b_index, fn=ufunc):
                fn(V[a], V[b], out=V[o])
                np.bitwise_not(V[o], out=V[o])
                np.bitwise_and(V[o], m, out=V[o])

        return op
    evaluator = compile_array_evaluator(gate_type, len(fanin))

    def op(V, m, o=out, fi=tuple(fanin), fn=evaluator):
        V[o] = fn([V[i] for i in fi], m)

    return op


class NumpyKernel:
    """Compiled numpy engine for one netlist.

    Built by :class:`repro.sim.parallel.ParallelSimulator` when
    ``kernel="numpy"``; holds the in-place good-pass schedule, the
    per-gate allocating cone evaluators, and memoized lane masks.
    """

    def __init__(self, netlist: Netlist, view, schedule):
        self.netlist = netlist
        self.view = view
        self.num_gates = len(netlist.gates)
        self._ops = tuple(
            _compile_pass_op(index, gate_type, fanin)
            for index, gate_type, fanin in schedule
        )
        self.evaluators: List[Optional[Callable]] = [
            None
            if gate.type == GateType.INPUT
            else compile_array_evaluator(gate.type, len(gate.fanin))
            for gate in netlist.gates
        ]
        self._masks: Dict[int, np.ndarray] = {}
        self._zeros: Dict[int, np.ndarray] = {}
        self._input_rows = np.array(view.input_gates, dtype=np.intp)

    def mask(self, n_patterns: int) -> np.ndarray:
        mask = self._masks.get(n_patterns)
        if mask is None:
            mask = self._masks[n_patterns] = lane_mask(n_patterns)
        return mask

    def zero(self, n_patterns: int) -> np.ndarray:
        """A shared read-only all-zero lane row (a forced stuck-at-0 word)."""
        zero = self._zeros.get(n_patterns)
        if zero is None:
            zero = np.zeros(lanes_for(n_patterns), dtype=LANE_DTYPE)
            zero.flags.writeable = False
            self._zeros[n_patterns] = zero
        return zero

    def pack_block(self, bits: np.ndarray) -> np.ndarray:
        """Pack a chunk of the bit matrix into per-input lane rows."""
        return pack_bits(bits)

    def run_pass(
        self, packed: np.ndarray, n_patterns: int
    ) -> GoodBlock:
        """One full-schedule pass: packed input rows -> all gate values."""
        mask = self.mask(n_patterns)
        values = np.zeros((self.num_gates, len(mask)), dtype=LANE_DTYPE)
        values[self._input_rows] = packed & mask
        for op in self._ops:
            op(values, mask)
        return GoodBlock(values, n_patterns)

    def read_rows(
        self, block: GoodBlock, rows: Sequence[int]
    ) -> np.ndarray:
        """Bit matrix ``(n_patterns, len(rows))`` of selected gate rows."""
        return unpack_bits(block.values[np.array(rows, dtype=np.intp)], block.n_patterns)


def first_pattern_bit(diff: np.ndarray) -> Optional[int]:
    """Index of the lowest set bit across the lane array, or ``None``."""
    nonzero = np.flatnonzero(diff)
    if not nonzero.size:
        return None
    lane = int(nonzero[0])
    value = int(diff[lane])
    return lane * LANE_BITS + ((value & -value).bit_length() - 1)
