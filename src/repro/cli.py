"""Command-line interface: ``python -m repro <command> ...``.

Thin orchestration over the library for the common one-shot jobs:

=============  =====================================================
``circuits``   list the built-in benchmark circuits
``stats``      print a circuit's structural statistics
``atpg``       run the stuck-at ATPG flow, optionally save patterns
``faultsim``   grade a saved pattern file against a circuit
``lbist``      run STUMPS and report the coverage curve
``mbist``      print the March coverage matrix
``plan``       print the chip-level DFT plan for an accelerator
=============  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .atpg import atpg_table_row, run_atpg
from .bist.lbist import StumpsController
from .bist.mbist import coverage_matrix, format_matrix
from .circuit import benchmarks
from .circuit.bench import load_bench
from .circuit.netlist import Netlist
from .circuit.verilog import load_verilog
from .dft.planner import build_plan
from .faults import collapse_faults, full_fault_list
from .scan.patfile import format_patterns, load_patterns
from .sim.dispatch import BACKEND_NAMES
from .sim.faultsim import FaultSimulator
from .sim.parallel import WORD_WIDTH, WORD_WIDTHS
from .sim.view import CombinationalView


def _load_circuit(spec: str) -> Netlist:
    """Resolve a circuit argument: benchmark name, .bench, or .v file."""
    if spec.endswith(".bench"):
        return load_bench(spec)
    if spec.endswith(".v"):
        return load_verilog(spec)
    return benchmarks.get_benchmark(spec)


def _cmd_circuits(_args) -> int:
    for name in benchmarks.benchmark_names():
        netlist = benchmarks.get_benchmark(name)
        print(f"{name:10s} {netlist.stats()}")
    return 0


def _cmd_stats(args) -> int:
    netlist = _load_circuit(args.circuit)
    print(f"{netlist.name}: {netlist.stats()}")
    faults = full_fault_list(netlist)
    collapsed, _ = collapse_faults(netlist, faults)
    print(f"stuck-at faults: {len(faults)} uncollapsed, {len(collapsed)} collapsed")
    return 0


def _cmd_atpg(args) -> int:
    netlist = _load_circuit(args.circuit)
    result = run_atpg(
        netlist,
        seed=args.seed,
        backtrack_limit=args.backtrack_limit,
        backend=args.backend,
        jobs=args.jobs,
        word_width=args.word_width,
    )
    row = atpg_table_row(netlist, result)
    for key, value in row.items():
        print(f"{key}: {value}")
    if args.output:
        view = CombinationalView(netlist)
        text = format_patterns(netlist.name, view.input_names(), result.patterns)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(result.patterns)} patterns to {args.output}")
    return 0


def _cmd_faultsim(args) -> int:
    netlist = _load_circuit(args.circuit)
    pattern_file = load_patterns(args.patterns)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist, word_width=args.word_width)
    filled = [
        [0 if v not in (0, 1) else v for v in pattern]
        for pattern in pattern_file.patterns
    ]
    result = simulator.simulate(
        filled, faults, drop=True, engine=args.backend, jobs=args.jobs
    )
    print(
        f"{len(result.detected)}/{len(faults)} faults detected "
        f"({result.coverage:.2%}) by {len(filled)} patterns"
    )
    stats = result.stats
    if stats:
        line = (
            f"[{stats.get('engine')} w={stats.get('word_width', WORD_WIDTH)}] "
            f"{stats.get('faults_simulated', 0)} faults, "
            f"{stats.get('events_propagated', 0)} events, "
            f"{stats.get('words_evaluated', 0)} words, "
            f"{stats.get('good_cache_hits', 0)} cached good blocks, "
            f"{stats.get('wall_time_s', 0.0):.3f}s"
        )
        if "jobs" in stats:
            line += (
                f", {stats['jobs']} jobs, "
                f"{len(stats.get('partitions', []))} partitions, "
                f"imbalance {stats.get('load_imbalance')}"
            )
        print(line)
    return 0


def _cmd_lbist(args) -> int:
    netlist = _load_circuit(args.circuit)
    controller = StumpsController(netlist, word_width=args.word_width)
    result = controller.run(args.patterns)
    for point in result.coverage_points:
        print(f"{int(point['patterns']):6d} patterns: {point['coverage']:.4f}")
    print(f"final coverage: {result.final_coverage:.4f}")
    print(f"signature: {result.signature:#x}")
    return 0


def _cmd_mbist(args) -> int:
    matrix = coverage_matrix(
        n_cells=args.cells, samples_per_kind=args.samples, seed=args.seed
    )
    print(format_matrix(matrix))
    return 0


def _cmd_plan(_args) -> int:
    plan = build_plan()
    for key, value in plan.report.items():
        print(f"{key}: {value}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _add_word_width_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--word-width",
        type=_positive_int,
        default=WORD_WIDTH,
        help=(
            "patterns packed per simulation word "
            f"(default: {WORD_WIDTH}; characterized ladder: "
            f"{'/'.join(str(w) for w in WORD_WIDTHS)}; results are "
            "bit-identical for every width)"
        ),
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="ppsfp",
        help="fault-simulation engine (default: ppsfp)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --backend pool (default: CPU count)",
    )
    _add_word_width_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AI-chip DFT methodology toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("circuits", help="list built-in circuits").set_defaults(
        handler=_cmd_circuits
    )

    stats = commands.add_parser("stats", help="circuit statistics")
    stats.add_argument("circuit", help="benchmark name, .bench, or .v file")
    stats.set_defaults(handler=_cmd_stats)

    atpg = commands.add_parser("atpg", help="run stuck-at ATPG")
    atpg.add_argument("circuit")
    atpg.add_argument("--seed", type=int, default=0)
    atpg.add_argument("--backtrack-limit", type=int, default=64)
    atpg.add_argument("--output", "-o", help="write patterns to file")
    _add_backend_arguments(atpg)
    atpg.set_defaults(handler=_cmd_atpg)

    faultsim = commands.add_parser("faultsim", help="grade a pattern file")
    faultsim.add_argument("circuit")
    faultsim.add_argument("patterns", help="pattern file from `repro atpg -o`")
    _add_backend_arguments(faultsim)
    faultsim.set_defaults(handler=_cmd_faultsim)

    lbist = commands.add_parser("lbist", help="run STUMPS logic BIST")
    lbist.add_argument("circuit")
    lbist.add_argument("--patterns", type=int, default=512)
    _add_word_width_argument(lbist)
    lbist.set_defaults(handler=_cmd_lbist)

    mbist = commands.add_parser("mbist", help="March coverage matrix")
    mbist.add_argument("--cells", type=int, default=64)
    mbist.add_argument("--samples", type=int, default=30)
    mbist.add_argument("--seed", type=int, default=0)
    mbist.set_defaults(handler=_cmd_mbist)

    plan = commands.add_parser("plan", help="chip-level DFT plan")
    plan.set_defaults(handler=_cmd_plan)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
