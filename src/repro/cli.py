"""Command-line interface: ``python -m repro <command> ...``.

Thin orchestration over the library for the common one-shot jobs:

=============  =====================================================
``circuits``   list the built-in benchmark circuits
``stats``      print a circuit's structural statistics
``atpg``       run the stuck-at ATPG flow, optionally save patterns
``faultsim``   grade a saved pattern file against a circuit (``fsim``)
``lbist``      run STUMPS and report the coverage curve
``mbist``      print the March coverage matrix
``plan``       print the chip-level DFT plan for an accelerator
``obs diff``   compare two BENCH_*.json reports (median + MAD bands)
``obs gate``   like diff, but exit 4 on regression (the CI sentinel)
``obs tail``   live progress of a supervised campaign from its journal
=============  =====================================================

Every subcommand also takes ``--report FILE`` (RunReport JSON),
``--profile`` (span tree + counters on stdout), and ``--trace FILE``
(Chrome trace-event JSON for Perfetto/``chrome://tracing``).

Exit codes: ``0`` success; ``2`` bad arguments (argparse) or campaign
mismatch (journal or shard store keyed to a different circuit/pattern
set); ``3`` a supervised fault-sim campaign completed *partially*
(unrecoverable partitions — reported coverage is a lower bound);
``4`` benchmark regression detected by ``obs gate``; ``5`` a
``--store`` campaign was already finished by peer runners (the printed
result is real — merged from the store — but this runner graded
nothing); ``130`` interrupted (Ctrl-C: workers are terminated, held
store leases are released, and the campaign journal is flushed before
exiting, so ``--resume``/peers pick up where the run died).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import time

from . import obs
from .atpg import ENGINE_NAMES, atpg_table_row, run_atpg
from .obs import regress
from .obs.regress import RegressConfig
from .bist.lbist import StumpsController
from .bist.mbist import coverage_matrix, format_matrix
from .circuit import benchmarks
from .circuit.bench import load_bench
from .circuit.netlist import Netlist
from .circuit.verilog import load_verilog
from .dft.planner import build_plan
from .faults import collapse_faults, full_fault_list
from .scan.patfile import format_patterns, load_patterns
from .sim.chaos import ChaosPlan, HostChaosPlan
from .sim.dispatch import BACKEND_NAMES
from .sim.faultsim import FaultSimulator
from .sim.journal import (
    CampaignJournal,
    JournalMismatchError,
    read_campaign_progress,
)
from .sim.store import ShardStore, read_store_progress
from .sim.parallel import KERNELS, WORD_WIDTH, WORD_WIDTHS
from .sim.supervisor import SupervisedPoolBackend, SupervisorConfig
from .sim.view import CombinationalView

#: Campaign finished but some partitions were unrecoverable: the printed
#: coverage is a lower bound, not the final word.
EXIT_PARTIAL = 3
#: ``repro obs gate`` found a wall-time regression or counter drift.
EXIT_REGRESSION = 4
#: A ``--store`` campaign was complete before this runner graded anything:
#: the merged result printed is authoritative, but schedulers fanning out
#: runners can tell "did work" (0) from "peers beat me to all of it" (5).
EXIT_PEERS = 5
#: Interrupted by Ctrl-C after clean teardown (POSIX convention: 128+SIGINT).
EXIT_INTERRUPTED = 130


def _load_circuit(spec: str) -> Netlist:
    """Resolve a circuit argument: benchmark name, .bench, or .v file."""
    if spec.endswith(".bench"):
        return load_bench(spec)
    if spec.endswith(".v"):
        return load_verilog(spec)
    return benchmarks.get_benchmark(spec)


def _circuit_spec(args) -> str:
    """The circuit named positionally or via ``--circuit`` (exactly one)."""
    positional = getattr(args, "circuit", None)
    flagged = getattr(args, "circuit_opt", None)
    if positional and flagged and positional != flagged:
        raise ValueError(
            f"circuit given twice: positional {positional!r} vs "
            f"--circuit {flagged!r}"
        )
    spec = flagged or positional
    if not spec:
        raise ValueError("no circuit given (positionally or via --circuit)")
    return spec


def _cmd_circuits(_args) -> int:
    for name in benchmarks.benchmark_names():
        netlist = benchmarks.get_benchmark(name)
        print(f"{name:10s} {netlist.stats()}")
    return 0


def _cmd_stats(args) -> int:
    netlist = _load_circuit(_circuit_spec(args))
    print(f"{netlist.name}: {netlist.stats()}")
    faults = full_fault_list(netlist)
    collapsed, _ = collapse_faults(netlist, faults)
    print(f"stuck-at faults: {len(faults)} uncollapsed, {len(collapsed)} collapsed")
    return 0


def _cmd_atpg(args) -> int:
    netlist = _load_circuit(_circuit_spec(args))
    result = run_atpg(
        netlist,
        seed=args.seed,
        backtrack_limit=args.backtrack_limit,
        backend=args.backend,
        jobs=args.jobs,
        partitions=args.partitions,
        word_width=args.word_width,
        kernel=args.kernel,
        podem_time_budget_s=args.podem_budget,
        journal=args.resume,
        engine=args.engine,
    )
    row = atpg_table_row(netlist, result)
    for key, value in row.items():
        print(f"{key}: {value}")
    if args.output:
        view = CombinationalView(netlist)
        text = format_patterns(netlist.name, view.input_names(), result.patterns)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(result.patterns)} patterns to {args.output}")
    return 0


def _supervised_backend(args) -> Optional[SupervisedPoolBackend]:
    """Build a supervised backend when the flags call for one.

    ``--resume``, ``--timeout``, ``--retries``, ``--chaos``, ``--store``
    and ``--host-chaos`` all imply supervision; asking for them with an
    unsupervised ``--backend`` is upgraded (with a note) rather than
    silently ignored.
    """
    if args.store is None and (args.runner_id is not None or bool(args.host_chaos)):
        raise ValueError(
            "--runner-id/--host-chaos only make sense with --store DIR "
            "(they name runners of a shared campaign)"
        )
    implied = (
        args.resume is not None
        or args.timeout is not None
        or args.retries is not None
        or bool(args.chaos)
        or args.store is not None
        or bool(args.host_chaos)
    )
    if args.backend != "supervised" and not implied:
        return None
    if args.backend not in ("supervised", "pool") and implied:
        print(f"(--backend {args.backend} upgraded to supervised)")
    config = SupervisorConfig(timeout_s=args.timeout)
    if args.retries is not None:
        config.max_retries = args.retries
    journal = (
        CampaignJournal(args.resume, strict=True) if args.resume is not None else None
    )
    chaos = ChaosPlan.parse(args.chaos) if args.chaos else None
    store = None
    if args.store is not None:
        runner_id = (
            args.runner_id
            if args.runner_id is not None
            else f"runner-{os.getpid()}"
        )
        store = ShardStore(args.store, runner_id=runner_id, lease_s=args.lease_s)
    host_chaos = HostChaosPlan.parse(args.host_chaos) if args.host_chaos else None
    return SupervisedPoolBackend(
        jobs=args.jobs,
        seed=args.seed,
        partitions=args.partitions,
        config=config,
        chaos=chaos,
        journal=journal,
        store=store,
        host_chaos=host_chaos,
    )


def _cmd_faultsim(args) -> int:
    netlist = _load_circuit(_circuit_spec(args))
    pattern_file = load_patterns(args.patterns)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(
        netlist, word_width=args.word_width, kernel=args.kernel
    )
    expected = simulator.view.num_inputs
    for position, pattern in enumerate(pattern_file.patterns):
        if len(pattern) != expected:
            raise ValueError(
                f"pattern {position} in {args.patterns!r} has {len(pattern)} "
                f"bits but {netlist.name} has {expected} inputs — wrong "
                f"pattern file for this circuit?"
            )
    filled = [
        [0 if v not in (0, 1) else v for v in pattern]
        for pattern in pattern_file.patterns
    ]
    engine = _supervised_backend(args) or args.backend
    result = simulator.simulate(
        filled,
        faults,
        drop=True,
        engine=engine,
        jobs=args.jobs,
        seed=args.seed,
        partitions=args.partitions,
    )
    print(
        f"{len(result.detected)}/{len(faults)} faults detected "
        f"({result.coverage:.2%}) by {len(filled)} patterns"
    )
    stats = result.stats
    if stats:
        line = (
            f"[{stats.get('engine')} w={stats.get('word_width', WORD_WIDTH)}] "
            f"{stats.get('faults_simulated', 0)} faults, "
            f"{stats.get('events_propagated', 0)} events, "
            f"{stats.get('words_evaluated', 0)} words, "
            f"{stats.get('good_cache_hits', 0)} cached good blocks, "
            f"{stats.get('wall_time_s', 0.0):.3f}s"
        )
        if "jobs" in stats:
            n_partitions = stats.get("n_partitions", len(stats.get("partitions", [])))
            line += f", {stats['jobs']} jobs, {n_partitions} partitions"
            if "load_imbalance" in stats:
                line += f", imbalance {stats['load_imbalance']}"
        print(line)
        recovery = {
            key: stats[key]
            for key in (
                "retries", "worker_crashes", "timeouts",
                "invalid_results", "inline_fallbacks",
            )
            if stats.get(key)
        }
        if recovery:
            print(
                "recovered: "
                + ", ".join(f"{v} {k.replace('_', ' ')}" for k, v in recovery.items())
            )
        if stats.get("journal_skipped"):
            print(
                f"resumed from journal: {stats['journal_skipped']}/"
                f"{stats.get('n_partitions', '?')} partitions skipped"
            )
        store_stats = stats.get("store")
        if store_stats:
            line = (
                f"store {store_stats['path']} [{store_stats['runner_id']}]: "
                f"{store_stats['shards_graded_here']}/{store_stats['n_shards']}"
                f" shards graded by this runner"
            )
            extra = ", ".join(
                f"{store_stats[key]} {key.replace('_', ' ')}"
                for key in ("steals", "publish_conflicts", "leases_swept")
                if store_stats.get(key)
            )
            if extra:
                line += f" ({extra})"
            print(line)
        failed = stats.get("failed_partitions")
        if failed:
            indices = sorted(entry["partition"] for entry in failed)
            print(
                f"WARNING: {len(failed)} partition(s) unrecoverable "
                f"{indices}; coverage above is a LOWER BOUND "
                f"({stats['coverage_lower_bound']:.2%})",
                file=sys.stderr,
            )
            return EXIT_PARTIAL
        if store_stats and store_stats.get("finished_by_peers"):
            print(
                "campaign already finished by peer runners; "
                "result above merged from the store"
            )
            return EXIT_PEERS
    return 0


def _cmd_lbist(args) -> int:
    netlist = _load_circuit(_circuit_spec(args))
    controller = StumpsController(
        netlist, word_width=args.word_width, kernel=args.kernel
    )
    result = controller.run(args.patterns)
    for point in result.coverage_points:
        print(f"{int(point['patterns']):6d} patterns: {point['coverage']:.4f}")
    print(f"final coverage: {result.final_coverage:.4f}")
    print(f"signature: {result.signature:#x}")
    return 0


def _cmd_mbist(args) -> int:
    matrix = coverage_matrix(
        n_cells=args.cells, samples_per_kind=args.samples, seed=args.seed
    )
    print(format_matrix(matrix))
    return 0


def _cmd_plan(_args) -> int:
    plan = build_plan()
    for key, value in plan.report.items():
        print(f"{key}: {value}")
    return 0


# ----------------------------------------------------------------------
# repro obs: benchmark comparison, regression gate, live campaign tail
# ----------------------------------------------------------------------


def _regress_config(args) -> RegressConfig:
    config = RegressConfig(
        wall_threshold=args.threshold,
        mad_k=args.mad_k,
        counter_tolerance=args.counter_tolerance,
    )
    config.validate()
    return config


def _cmd_obs_diff(args) -> int:
    results = regress.compare_paths(args.baseline, args.current, _regress_config(args))
    for line in regress.format_findings(results, verbose=args.verbose):
        print(line)
    return 0


def _cmd_obs_gate(args) -> int:
    results = regress.compare_paths(args.baseline, args.current, _regress_config(args))
    for line in regress.format_findings(results, verbose=args.verbose):
        print(line)
    failing = [
        finding
        for findings in results.values()
        for finding in regress.failures(findings)
    ]
    if failing:
        print(
            f"REGRESSION GATE FAILED: {len(failing)} failing metric(s) "
            f"across {sum(1 for f in results.values() if regress.failures(f))} "
            f"benchmark file(s)",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    print("regression gate passed")
    return 0


def _render_progress(progress) -> str:
    done_list = progress.get("partitions_done", [])
    done = progress.get("partitions_done_count", len(done_list))
    total = progress.get("partitions_total", "?")
    graded = progress.get("faults_graded", 0)
    faults_total = progress.get("faults_total")
    line = f"partitions {done}/{total}, faults graded {graded}"
    if faults_total:
        line += f"/{faults_total} ({graded / faults_total:.1%})"
    line += f", detected {progress.get('detected', 0)}"
    beat = progress.get("last_heartbeat")
    if beat and "t_wall" in beat:
        line += f", last heartbeat {max(0.0, time.time() - beat['t_wall']):.1f}s ago"
    return line


def _render_store_progress(progress) -> List[str]:
    """Per-runner ownership map of a shard store, one line per runner."""
    done = progress.get("partitions_done_count", 0)
    total = progress.get("partitions_total", "?")
    lines = [
        f"store {progress['path']}: partitions {done}/{total} done, "
        f"{progress.get('leased', 0)} leased, "
        f"{progress.get('available', 0)} available, "
        f"faults graded {progress.get('faults_graded', 0)}, "
        f"detected {progress.get('detected', 0)}"
        + (f", {progress['steals']} steal(s)" if progress.get("steals") else "")
    ]
    for runner, row in sorted(progress.get("runners", {}).items()):
        held = ", ".join(
            f"{entry['shard']}@{entry['expires_in_s']:+.1f}s"
            for entry in row.get("held", ())
        )
        line = f"  {runner}: {row.get('published', 0)} published"
        if row.get("steals"):
            line += f", {row['steals']} stolen"
        line += f", holds [{held}]" if held else ", holds nothing"
        lines.append(line)
    if progress.get("complete"):
        lines.append("  campaign complete")
    return lines


def _cmd_obs_tail(args) -> int:
    is_store = os.path.isdir(args.journal)
    while True:
        if is_store:
            progress = read_store_progress(args.journal)
            for line in _render_store_progress(progress):
                print(line)
        else:
            progress = read_campaign_progress(args.journal)
            if not progress["sections"]:
                print(f"{args.journal}: no campaign sections yet")
            else:
                print(_render_progress(progress))
        total = progress.get("partitions_total")
        done = progress.get(
            "partitions_done_count", len(progress.get("partitions_done", []))
        )
        complete = total is not None and done >= total
        if not args.follow or complete:
            return 0
        time.sleep(args.interval)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _add_word_width_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--word-width",
        type=_positive_int,
        default=WORD_WIDTH,
        help=(
            "patterns packed per simulation word "
            f"(default: {WORD_WIDTH}; characterized ladder: "
            f"{'/'.join(str(w) for w in WORD_WIDTHS)}; results are "
            "bit-identical for every width)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="python",
        help=(
            "gate-evaluation kernel: 'python' bigint words or 'numpy' "
            "uint64 lane arrays (default: python; results are "
            "bit-identical for both)"
        ),
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="ppsfp",
        help="fault-simulation engine (default: ppsfp)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for pool/supervised backends (default: CPU count)",
    )
    parser.add_argument(
        "--partitions",
        type=_positive_int,
        default=None,
        help=(
            "fault partitions for pool/supervised backends (default: sized "
            "from the fault universe; independent of --jobs, so results "
            "never depend on worker count)"
        ),
    )
    _add_word_width_argument(parser)


def _add_circuit_arguments(parser: argparse.ArgumentParser) -> None:
    """Accept the circuit positionally or as ``--circuit`` (one required)."""
    parser.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="benchmark name (incl. '<name>_xN' replications like "
        "'mac4_x32'), .bench, or .v file",
    )
    parser.add_argument(
        "--circuit",
        dest="circuit_opt",
        default=None,
        metavar="CIRCUIT",
        help="alternative to the positional circuit argument",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags every subcommand carries."""
    parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write a structured RunReport (spans + counters) as JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the span tree and counters after the command finishes",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event timeline (open in Perfetto or "
        "chrome://tracing): one track per worker process, instant "
        "markers for supervisor retries/kills/chaos",
    )


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=0,
        help="deterministic fault-partitioning seed (default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-partition wall-clock deadline (supervised backend)",
    )
    parser.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=None,
        help="pool retries per failing partition before the inline "
        "fallback (supervised backend; default: 2)",
    )
    parser.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="campaign journal (JSONL): skip partitions it already holds, "
        "checkpoint new ones as they complete",
    )
    parser.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="PART:MODE[,MODE...]",
        help="inject deterministic failures for testing, e.g. "
        "'2:crash,crash' or '0:hang' (repeatable; supervised backend)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="shared shard-store directory: N independently launched "
        "runners with the same --store cooperatively execute one "
        "campaign, stealing shards from dead peers (implies the "
        "supervised backend)",
    )
    parser.add_argument(
        "--runner-id",
        default=None,
        metavar="NAME",
        help="this runner's name in the store (lease ownership, event "
        "files; default: runner-<pid>)",
    )
    parser.add_argument(
        "--lease-s",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="shard lease duration: a runner silent this long is presumed "
        "dead and its shards are stolen (default: 30)",
    )
    parser.add_argument(
        "--host-chaos",
        action="append",
        default=None,
        metavar="RUNNER:MODE[@AFTER[,DURATION_S]]",
        help="inject a host-level failure into the named runner: "
        "'r1:kill@2' (exit hard after 2 publishes), 'r0:stall@1,0.5' "
        "(stop renewing leases), 'r2:partition@1,0.5' (lose the store "
        "for a window; repeatable; requires --store)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AI-chip DFT methodology toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    circuits = commands.add_parser("circuits", help="list built-in circuits")
    _add_obs_arguments(circuits)
    circuits.set_defaults(handler=_cmd_circuits)

    stats = commands.add_parser("stats", help="circuit statistics")
    _add_circuit_arguments(stats)
    _add_obs_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    atpg = commands.add_parser("atpg", help="run stuck-at ATPG")
    _add_circuit_arguments(atpg)
    _add_obs_arguments(atpg)
    atpg.add_argument("--seed", type=_nonnegative_int, default=0)
    atpg.add_argument("--backtrack-limit", type=_positive_int, default=64)
    atpg.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="podem",
        help="deterministic phase-2 generator: classic PODEM, the "
        "D-algorithm (proves untestability), SCOAP-guided PODEM, or "
        "the per-fault portfolio racing all three",
    )
    atpg.add_argument(
        "--podem-budget",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-fault PODEM wall-clock budget; over-budget faults are "
        "counted as aborted (not untestable) instead of stalling the run",
    )
    atpg.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="campaign journal for the batch fault-sim passes (random "
        "phase, verify, top-off) — implies the supervised backend",
    )
    atpg.add_argument("--output", "-o", help="write patterns to file")
    _add_backend_arguments(atpg)
    atpg.set_defaults(handler=_cmd_atpg)

    faultsim = commands.add_parser(
        "faultsim", aliases=["fsim"], help="grade a pattern file"
    )
    _add_circuit_arguments(faultsim)
    faultsim.add_argument("patterns", help="pattern file from `repro atpg -o`")
    _add_backend_arguments(faultsim)
    _add_supervision_arguments(faultsim)
    _add_obs_arguments(faultsim)
    faultsim.set_defaults(handler=_cmd_faultsim)

    lbist = commands.add_parser("lbist", help="run STUMPS logic BIST")
    _add_circuit_arguments(lbist)
    lbist.add_argument("--patterns", type=int, default=512)
    _add_word_width_argument(lbist)
    _add_obs_arguments(lbist)
    lbist.set_defaults(handler=_cmd_lbist)

    mbist = commands.add_parser("mbist", help="March coverage matrix")
    mbist.add_argument("--cells", type=int, default=64)
    mbist.add_argument("--samples", type=int, default=30)
    mbist.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(mbist)
    mbist.set_defaults(handler=_cmd_mbist)

    plan = commands.add_parser("plan", help="chip-level DFT plan")
    _add_obs_arguments(plan)
    plan.set_defaults(handler=_cmd_plan)

    obs_cmd = commands.add_parser(
        "obs", help="observability tooling: diff, regression gate, tail"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    def _add_compare_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "baseline", help="baseline BENCH_*.json file or directory of them"
        )
        sub.add_argument(
            "current", help="current BENCH_*.json file or directory of them"
        )
        sub.add_argument(
            "--threshold",
            type=_positive_float,
            default=0.5,
            help="relative wall-time regression threshold (default: 0.5 = "
            "+50%% over the baseline median, beyond the noise band)",
        )
        sub.add_argument(
            "--mad-k",
            type=float,
            default=3.0,
            help="noise band half-width in scaled MADs of the baseline "
            "replicates (default: 3.0)",
        )
        sub.add_argument(
            "--counter-tolerance",
            type=float,
            default=0.0,
            help="relative drift allowed on deterministic work counters "
            "(default: 0 = exact)",
        )
        sub.add_argument(
            "--verbose", "-v", action="store_true",
            help="also print metrics that did not change",
        )
        _add_obs_arguments(sub)

    diff = obs_sub.add_parser(
        "diff", help="compare two benchmark reports (median + MAD bands)"
    )
    _add_compare_arguments(diff)
    diff.set_defaults(handler=_cmd_obs_diff)

    gate = obs_sub.add_parser(
        "gate",
        help=f"like diff, but exit {EXIT_REGRESSION} on wall-time "
        "regression or counter drift (the CI sentinel)",
    )
    _add_compare_arguments(gate)
    gate.set_defaults(handler=_cmd_obs_gate)

    tail = obs_sub.add_parser(
        "tail",
        help="progress of a supervised campaign from its journal, or "
        "per-runner shard ownership of a --store directory",
    )
    tail.add_argument(
        "journal",
        help="CampaignJournal JSONL file (--resume) or shard-store "
        "directory (--store): a directory is rendered as the live "
        "per-runner ownership map",
    )
    tail.add_argument(
        "--follow", "-f", action="store_true",
        help="keep polling until the campaign's partitions are all done",
    )
    tail.add_argument(
        "--interval",
        type=_positive_float,
        default=1.0,
        help="seconds between polls with --follow (default: 1.0)",
    )
    _add_obs_arguments(tail)
    tail.set_defaults(handler=_cmd_obs_tail)
    return parser


def _print_profile(observation: "obs.Observation") -> None:
    """Human-readable span tree and metric values (the ``--profile`` view)."""
    print("--- profile: spans ---")
    for line in observation.root.tree_lines():
        print(line)
    samples = [
        (obs.metric_id(name, labels), metric)
        for name, labels, metric in observation.metrics.items()
        if metric.kind in ("counter", "gauge") and metric.value is not None
    ]
    if samples:
        print("--- profile: metrics ---")
        width = max(len(identity) for identity, _ in samples)
        for identity, metric in samples:
            value = metric.value
            rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
            print(f"{identity:<{width}s} {rendered}")


def _run_observed(args, argv: Optional[List[str]]) -> int:
    """Run the handler under an observation; emit report/profile after."""
    with obs.observe(f"repro.{args.command}", command=args.command) as observation:
        code = args.handler(args)
    meta = {
        "argv": list(argv) if argv is not None else list(sys.argv[1:]),
        "exit_code": code,
    }
    report = obs.RunReport.from_observation(observation, meta=meta)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote run report to {args.report}")
    if getattr(args, "trace", None):
        obs.write_chrome_trace(args.trace, report)
        print(f"wrote trace-event timeline to {args.trace}")
    if args.profile:
        _print_profile(observation)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if (
            getattr(args, "report", None)
            or getattr(args, "trace", None)
            or getattr(args, "profile", False)
        ):
            return _run_observed(args, argv)
        return args.handler(args)
    except KeyboardInterrupt:
        # The supervisor has already reaped its workers and flushed the
        # journal on the way up; exit 130 instead of a multiprocessing
        # traceback so shells and schedulers see a clean interrupt.
        print(
            "interrupted: workers terminated, journal flushed — "
            "re-run with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except (JournalMismatchError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
